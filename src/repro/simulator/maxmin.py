"""Weighted max-min fair bandwidth allocation by progressive filling.

Given demands (each a set of directed links plus a weight) and per-link
capacities, progressively raise every unfrozen demand's rate in proportion
to its weight until some link saturates; freeze the demands on that link and
repeat. This is the textbook water-filling algorithm (Boudec's tutorial,
paper reference [11]) and yields the unique weighted max-min allocation.

Weights exist for TeXCP-style striping, where one agent deliberately sends
unequal shares down different paths; every single-path scheduler uses
weight 1.0.

The allocator runs after every flow arrival/completion/reroute, so it is
the simulator's hot loop. The fast path is :func:`maxmin_allocate_indexed`:
demands arrive as CSR-style integer arrays over a persistent
:class:`~repro.simulator.linkindex.LinkIndex`, and the progressive-filling
loop is fully vectorized — bottleneck search is one ``argmin`` over the
link arrays and each freeze round's capacity/weight updates are batched
``np.add.at`` scatters, with no per-demand Python loop. The string-keyed
:func:`maxmin_allocate` signature survives as a thin wrapper that interns
links per call, and :func:`maxmin_allocate_reference` preserves the
pre-index implementation verbatim as the equivalence/benchmark baseline.

Demands are assumed loop-free (no demand crosses the same directed link
twice) — true for every path the topology generators emit.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.simulator.linkindex import LinkIndex  # noqa: F401  (re-export)

#: A directed link identifier (u, v).
LinkId = Tuple[str, str]

#: One demand: the links it traverses and its weight.
Demand = Tuple[Sequence[LinkId], float]

_EPSILON = 1e-9

#: Hybrid switch: after this many consecutive filling rounds that each froze
#: fewer than :data:`_SMALL_ROUND` demands, the vectorized loop hands the
#: remainder to the lazy-heap tail (see :func:`_progressive_fill_tail`).
_TAIL_SWITCH_ROUNDS = 4
_SMALL_ROUND = 8


def maxmin_allocate_indexed(
    indices: np.ndarray,
    indptr: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Vectorized progressive filling over pre-indexed demands.

    ``indices``/``indptr`` are a CSR encoding of the demand x link
    incidence: demand ``j`` crosses link ids
    ``indices[indptr[j]:indptr[j + 1]]``. ``weights`` is per demand and
    ``capacities`` is the dense per-link-id capacity array (links not
    crossed by any demand are ignored). Returns ``(rates, iterations)``
    where ``rates`` is the per-demand allocation in bits/s and
    ``iterations`` counts filling rounds (one per saturated bottleneck) —
    the number the network's :meth:`perf_stats` telemetry accumulates.

    Inputs are trusted (the wrapper and the network validate at indexing
    time); an infeasible state still raises :class:`SimulationError`.
    """
    n = int(indptr.shape[0]) - 1
    if n <= 0:
        return np.zeros(0, dtype=float), 0
    num_links = int(capacities.shape[0])

    # Demand owning each nonzero, and the link -> member-demands CSR
    # transpose. The stable sort keeps members in ascending demand order,
    # which keeps the freeze-update arithmetic in the same sequence as the
    # reference implementation (bit-for-bit equal subtraction order).
    demand_of = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    link_members = demand_of[order]
    link_ptr = np.zeros(num_links + 1, dtype=np.intp)
    np.cumsum(np.bincount(indices, minlength=num_links), out=link_ptr[1:])

    remaining = capacities.astype(float, copy=True)
    live_weight = np.zeros(num_links, dtype=float)
    np.add.at(live_weight, indices, weights[demand_of])

    rates = np.zeros(n, dtype=float)
    active = np.ones(n, dtype=bool)
    unfrozen = n
    iterations = 0
    small_rounds = 0

    # Progressive filling, in two regimes. The vectorized loop below does an
    # O(L) numpy bottleneck search per round and freezes *every* link tied at
    # the minimum share in one batch. Ties are exact in exact arithmetic
    # (removing a frozen demand from a tied link leaves its share unchanged:
    # rem - w*s over lw - w equals s when rem = s*lw), so batching is
    # faithful to sequential filling — and in symmetric fabrics it collapses
    # hundreds of one-bottleneck rounds into a handful. Once the symmetric
    # waves are exhausted the remaining bottlenecks have distinct shares and
    # each round freezes one or two demands, so per-round numpy dispatch
    # overhead dominates; after _TAIL_SWITCH_ROUNDS such rounds the loop
    # hands the remainder to the lazy-heap tail, which does O(log L) work
    # per event with no O(L) passes. Each demand is frozen exactly once, so
    # the update work totals O(nnz) across the whole call either way.
    with np.errstate(divide="ignore", invalid="ignore"):
        while unfrozen > 0:
            iterations += 1
            share = np.where(live_weight > _EPSILON, remaining / live_weight, np.inf)
            bottleneck = int(np.argmin(share))
            best_share = share[bottleneck]
            if not np.isfinite(best_share):
                raise SimulationError("no bottleneck found with demands outstanding")
            tied = np.nonzero(share == best_share)[0]
            best_share = max(float(best_share), 0.0)
            if tied.size == 1:
                members = link_members[link_ptr[bottleneck] : link_ptr[bottleneck + 1]]
            else:
                members = np.concatenate(
                    [link_members[link_ptr[b] : link_ptr[b + 1]] for b in tied]
                )
            members = members[active[members]]
            if members.size:
                members = np.unique(members)
                frozen = weights[members] * best_share
                rates[members] = frozen
                active[members] = False
                unfrozen -= int(members.size)
                # Gather every nonzero position of the frozen demands (in
                # ascending demand order) and scatter the updates in one shot.
                starts = indptr[members]
                lens = indptr[members + 1] - starts
                total = int(lens.sum())
                offsets = np.cumsum(lens) - lens
                positions = (
                    np.arange(total, dtype=np.intp)
                    - np.repeat(offsets, lens)
                    + np.repeat(starts, lens)
                )
                touched = indices[positions]
                np.add.at(remaining, touched, -np.repeat(frozen, lens))
                np.add.at(live_weight, touched, -np.repeat(weights[members], lens))
            remaining[tied] = 0.0
            live_weight[tied] = 0.0
            np.maximum(remaining, 0.0, out=remaining)
            small_rounds = small_rounds + 1 if members.size < _SMALL_ROUND else 0
            if small_rounds >= _TAIL_SWITCH_ROUNDS and unfrozen > 0:
                return _progressive_fill_tail(
                    remaining,
                    live_weight,
                    indices,
                    indptr,
                    weights,
                    link_members,
                    link_ptr,
                    rates,
                    active,
                    unfrozen,
                    iterations,
                )

    return rates, iterations


def _progressive_fill_tail(
    remaining: np.ndarray,
    live_weight: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    weights: np.ndarray,
    link_members: np.ndarray,
    link_ptr: np.ndarray,
    rates: np.ndarray,
    active: np.ndarray,
    unfrozen: int,
    iterations: int,
) -> Tuple[np.ndarray, int]:
    """Finish progressive filling with a lazy-deletion min-heap.

    Takes over mid-fill when rounds stop batching (every remaining
    bottleneck has a distinct share, freezing one or two demands each).
    Shares are monotone: freezing a demand never lowers any other link's
    share (share' = s_l + w * (s_l - s) / (lw - w) >= s_l since s is the
    round minimum), so a heap entry's key is always <= the link's current
    share and a stale pop can simply be re-pushed with the refreshed key.
    Each pop/freeze touches O(path length * log L) Python-level work with
    no O(L) array passes — cheaper than numpy dispatch at this regime's
    one-demand-per-round granularity.

    Each round pops a verified-fresh bottleneck, then drains every other
    link whose *refreshed* share ties it exactly (a popped key <= the
    round share is only a lower bound; the refresh either proves the tie
    or re-pushes). The whole tie batch freezes before any capacity is
    subtracted, members in ascending demand order — the same tie set, the
    same freeze values, and the same subtraction sequence as one round of
    the vectorized loop. That exactness is load-bearing beyond the
    handoff being seamless: it makes the allocation invariant to how
    demands are grouped into fills (combined, per-dirty-subset, or the
    parallel backend's per-bucket fills), because a tie spanning several
    components resolves to the identical floats no matter which fill
    processes each side. Sequential tie handling here — freeze one link,
    subtract, recompute the next tied link's share — perturbs the tied
    partners by an ULP through the recomputed division, and *when* ties
    reach the tail depends on global round structure, so the perturbation
    would differ between a combined fill and its decomposition.
    """
    rem = remaining.tolist()
    lw = live_weight.tolist()
    flat = indices.tolist()
    ptr = indptr.tolist()
    wts = weights.tolist()
    members_flat = link_members.tolist()
    members_ptr = link_ptr.tolist()
    act = active.tolist()
    out = rates.tolist()

    heap = [(rem[b] / lw[b], b) for b in range(len(lw)) if lw[b] > _EPSILON]
    heapq.heapify(heap)
    while unfrozen > 0:
        if not heap:
            raise SimulationError("no bottleneck found with demands outstanding")
        share, b = heapq.heappop(heap)
        weight = lw[b]
        if weight <= _EPSILON:
            continue  # stale: the link froze (or emptied) since this push
        current = rem[b] / weight
        if current > share:
            heapq.heappush(heap, (current, b))  # stale key; retry with fresh
            continue
        # Drain the exact tie batch: every remaining key <= current is a
        # candidate (true shares never sit below their keys), and the
        # refresh sorts each into "ties exactly" or "actually higher".
        tied = [b]
        while heap and heap[0][0] <= current:
            _, other = heapq.heappop(heap)
            if lw[other] <= _EPSILON:
                continue
            refreshed = rem[other] / lw[other]
            if refreshed == current:
                tied.append(other)
            else:
                heapq.heappush(heap, (refreshed, other))
        if current < 0.0:
            current = 0.0
        iterations += 1
        if len(tied) > 1:
            members = sorted(
                {
                    j
                    for link in tied
                    for j in members_flat[members_ptr[link] : members_ptr[link + 1]]
                    if act[j]
                }
            )
        else:
            members = [
                j
                for j in members_flat[members_ptr[b] : members_ptr[b + 1]]
                if act[j]
            ]
        for j in members:
            wj = wts[j]
            rate = wj * current
            out[j] = rate
            act[j] = False
            unfrozen -= 1
            for link in flat[ptr[j] : ptr[j + 1]]:
                left = rem[link] - rate
                rem[link] = left if left > 0.0 else 0.0
                lw[link] -= wj
        for link in tied:
            rem[link] = 0.0
            lw[link] = 0.0

    rates[:] = out
    return rates, iterations


def _intern_demands(
    demands: Sequence[Demand],
    capacities: Dict[LinkId, float],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Validate string-keyed demands and build the CSR arrays.

    Links are interned in order of first appearance (matching the
    reference implementation); duplicate links within one demand collapse
    to a single crossing, preserving the reference's buffered-update
    semantics.
    """
    n = len(demands)
    used_links: Dict[LinkId, int] = {}
    weights = np.empty(n, dtype=float)
    flat: List[int] = []
    indptr = np.zeros(n + 1, dtype=np.intp)
    for j, (links, weight) in enumerate(demands):
        if not links:
            raise SimulationError(f"demand {j} traverses no links")
        if weight <= 0:
            raise SimulationError(f"demand {j} has non-positive weight {weight}")
        weights[j] = weight
        seen: Dict[int, None] = {}
        for link in links:
            if link not in capacities:
                raise SimulationError(f"demand {j} uses unknown link {link}")
            index = used_links.get(link)
            if index is None:
                index = len(used_links)
                used_links[link] = index
            seen.setdefault(index)
        flat.extend(seen)
        indptr[j + 1] = len(flat)
    caps = np.empty(len(used_links), dtype=float)
    for link, index in used_links.items():
        cap = capacities[link]
        if cap <= 0:
            raise SimulationError(f"link {link} in use has non-positive capacity {cap}")
        caps[index] = cap
    indices = np.asarray(flat, dtype=np.intp)
    return indices, indptr, weights, caps


def maxmin_allocate(
    demands: Sequence[Demand],
    capacities: Dict[LinkId, float],
) -> List[float]:
    """Rates (bits/s) for each demand under weighted max-min fairness.

    Compatibility wrapper over :func:`maxmin_allocate_indexed`: interns the
    links per call, then runs the vectorized core. Demands traversing no
    links are rejected — every real flow crosses at least its host access
    link. Unknown links or non-positive capacities and weights raise
    :class:`SimulationError`.
    """
    if len(demands) == 0:
        return []
    indices, indptr, weights, caps = _intern_demands(demands, capacities)
    rates, _ = maxmin_allocate_indexed(indices, indptr, weights, caps)
    return rates.tolist()


def maxmin_allocate_reference(
    demands: Sequence[Demand],
    capacities: Dict[LinkId, float],
) -> List[float]:
    """The pre-index string-keyed implementation, kept verbatim.

    Serves two jobs: the oracle for the randomized equivalence suite and
    the baseline for ``bench_perf_allocator``'s speedup measurement. Do
    not optimize this function.
    """
    n = len(demands)
    if n == 0:
        return []

    # Index the links actually in use; the demand/link scan below is O(nnz).
    used_links: Dict[LinkId, int] = {}
    demand_links: List[np.ndarray] = []
    link_members: List[List[int]] = []
    weights = np.empty(n, dtype=float)
    for j, (links, weight) in enumerate(demands):
        if not links:
            raise SimulationError(f"demand {j} traverses no links")
        if weight <= 0:
            raise SimulationError(f"demand {j} has non-positive weight {weight}")
        weights[j] = weight
        indices = []
        for link in links:
            if link not in capacities:
                raise SimulationError(f"demand {j} uses unknown link {link}")
            index = used_links.get(link)
            if index is None:
                index = len(used_links)
                used_links[link] = index
                link_members.append([])
            indices.append(index)
            link_members[index].append(j)
        demand_links.append(np.asarray(indices, dtype=np.intp))

    num_links = len(used_links)
    remaining = np.empty(num_links, dtype=float)
    for link, index in used_links.items():
        cap = capacities[link]
        if cap <= 0:
            raise SimulationError(f"link {link} in use has non-positive capacity {cap}")
        remaining[index] = cap

    live_weight = np.zeros(num_links, dtype=float)
    for j, indices in enumerate(demand_links):
        live_weight[indices] += weights[j]

    rates = np.zeros(n, dtype=float)
    active = np.ones(n, dtype=bool)
    unfrozen = n

    while unfrozen > 0:
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(live_weight > _EPSILON, remaining / live_weight, np.inf)
        bottleneck = int(np.argmin(share))
        best_share = share[bottleneck]
        if not np.isfinite(best_share):
            raise SimulationError("no bottleneck found with demands outstanding")
        best_share = max(float(best_share), 0.0)
        for j in link_members[bottleneck]:
            if not active[j]:
                continue
            rate = weights[j] * best_share
            rates[j] = rate
            active[j] = False
            unfrozen -= 1
            indices = demand_links[j]
            remaining[indices] -= rate
            live_weight[indices] -= weights[j]
        remaining[bottleneck] = 0.0
        live_weight[bottleneck] = 0.0
        np.maximum(remaining, 0.0, out=remaining)

    return rates.tolist()


def scatter_link_loads(
    load: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    rates: np.ndarray,
) -> None:
    """Accumulate per-demand rates onto an existing load array, in place.

    The scatter runs in ascending-demand order (``np.add.at`` accumulates
    repeated indices in array order), which is the same float addition
    sequence :func:`link_loads_indexed` performs from scratch — so a
    persistent load array maintained by zeroing a component's links and
    re-scattering its demands stays bit-identical to a full recomputation,
    the contract the incremental reallocator relies on.
    """
    demand_of = np.repeat(np.arange(indptr.shape[0] - 1, dtype=np.intp), np.diff(indptr))
    np.add.at(load, indices, np.asarray(rates, dtype=float)[demand_of])


def link_loads_indexed(
    indices: np.ndarray,
    indptr: np.ndarray,
    rates: np.ndarray,
    num_links: int,
) -> np.ndarray:
    """Dense per-link-id load (bits/s) for an allocation.

    The one shared load derivation: the network's reallocator divides this
    by the capacity array for its utilization surface, and the string-keyed
    :func:`link_utilizations` wraps it for external callers.
    """
    load = np.zeros(num_links, dtype=float)
    scatter_link_loads(load, indices, indptr, rates)
    return load


def link_utilizations(
    demands: Sequence[Demand],
    rates: Sequence[float],
    capacities: Dict[LinkId, float],
) -> Dict[LinkId, float]:
    """Per-link utilization in [0, 1] given an allocation.

    String-keyed wrapper over :func:`link_loads_indexed`; every link
    crossed by any demand appears in the result (zero-load links at 0.0),
    matching the historical contract.
    """
    if not demands:
        return {}
    used_links: Dict[LinkId, int] = {}
    flat: List[int] = []
    indptr = np.zeros(len(demands) + 1, dtype=np.intp)
    for j, (links, _) in enumerate(demands):
        for link in links:
            index = used_links.setdefault(link, len(used_links))
            flat.append(index)
        indptr[j + 1] = len(flat)
    load = link_loads_indexed(
        np.asarray(flat, dtype=np.intp), indptr, np.asarray(rates, dtype=float), len(used_links)
    )
    return {
        link: float(load[index]) / capacities[link]
        for link, index in used_links.items()
    }
