"""Flow-level discrete-event network simulator.

This is the repo's substitute for the paper's ns-2 setup (see DESIGN.md):
a fluid model in which, between events, every active flow transmits at its
**weighted max-min fair** rate — exactly the bandwidth allocation the
paper's Appendix A assumes TCP-with-fair-queuing converges to. Events are
flow arrivals, completions, reroutes, elephant promotions, and the periodic
control actions of whichever scheduler is attached.

Packet-level artifacts the paper's results hinge on are modelled
explicitly where they matter:

* path switches cost one congestion window of retransmitted bytes
  (TCP loses in-flight data when the path changes), and
* packet-granularity load balancing (TeXCP, per-packet VLB) suffers
  reordering-induced retransmissions, computed by
  :mod:`repro.simulator.reordering` from the delay spread of the paths a
  flow is striped across.
"""

from repro.simulator.components import FlowLinkComponents
from repro.simulator.engine import EventEngine
from repro.simulator.flows import Flow, FlowComponent, FlowRecord
from repro.simulator.flowstore import FlowStore
from repro.simulator.linkindex import LinkArrayMapping, LinkIndex
from repro.simulator.maxmin import (
    link_loads_indexed,
    link_utilizations,
    maxmin_allocate,
    maxmin_allocate_indexed,
    maxmin_allocate_reference,
    scatter_link_loads,
)
from repro.simulator.network import LinkState, Network
from repro.simulator.reordering import reordering_retx_fraction

__all__ = [
    "EventEngine",
    "Flow",
    "FlowComponent",
    "FlowLinkComponents",
    "FlowRecord",
    "FlowStore",
    "LinkArrayMapping",
    "LinkIndex",
    "LinkState",
    "Network",
    "link_loads_indexed",
    "link_utilizations",
    "maxmin_allocate",
    "maxmin_allocate_indexed",
    "maxmin_allocate_reference",
    "reordering_retx_fraction",
    "scatter_link_loads",
]
