"""Tests for the three topology families and the multi-rooted helpers."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import GBPS, MBPS
from repro.topology import ClosNetwork, FatTree, ThreeTier, build_topology
from repro.topology.graph import NodeKind


class TestFatTreeStructure:
    def test_component_counts_p4(self, fattree4):
        # p=4: 4 cores, 8 aggs, 8 tors, 16 hosts (p^3/4).
        assert len(fattree4.cores()) == 4
        assert len(fattree4.aggs()) == 8
        assert len(fattree4.tors()) == 8
        assert len(fattree4.hosts()) == 16

    def test_component_counts_general(self):
        p = 8
        topo = FatTree(p=p)
        assert len(topo.cores()) == (p // 2) ** 2
        assert len(topo.hosts()) == p**3 // 4
        assert len(topo.aggs()) == p * p // 2

    def test_every_switch_has_p_ports(self):
        p = 4
        topo = FatTree(p=p)
        for switch in topo.switches():
            assert len(topo.neighbors(switch)) == p, switch

    def test_odd_p_rejected(self):
        with pytest.raises(TopologyError):
            FatTree(p=5)

    def test_zero_p_rejected(self):
        with pytest.raises(TopologyError):
            FatTree(p=0)

    def test_core_reaches_every_pod_exactly_once(self, fattree4):
        for core in fattree4.cores():
            pods = [fattree4.pod_of(a) for a in fattree4.down_neighbors(core)]
            assert sorted(pods) == list(range(fattree4.p))

    def test_host_bandwidth_override(self):
        topo = FatTree(p=4, link_bandwidth_bps=GBPS, host_bandwidth_bps=100 * MBPS)
        host = topo.hosts()[0]
        assert topo.link(host, topo.tor_of(host)).bandwidth_bps == 100 * MBPS
        agg = topo.up_neighbors(topo.tor_of(host))[0]
        assert topo.link(topo.tor_of(host), agg).bandwidth_bps == GBPS


class TestFatTreePaths:
    def test_inter_pod_path_count_is_p2_over_4(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")
        assert len(paths) == fattree4.paths_per_inter_pod_pair == 4

    def test_each_inter_pod_path_has_unique_core(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_2_1")
        cores = [p[2] for p in paths]
        assert len(set(cores)) == len(paths)

    def test_intra_pod_paths_via_each_agg(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_0_1")
        assert len(paths) == 2
        assert all(len(p) == 3 for p in paths)

    def test_same_tor_trivial_path(self, fattree4):
        assert fattree4.equal_cost_paths("tor_0_0", "tor_0_0") == [("tor_0_0",)]

    def test_paths_are_wired(self, fattree4):
        for path in fattree4.equal_cost_paths("tor_0_0", "tor_3_1"):
            fattree4.path_links(path)  # raises if any hop is missing

    def test_non_tor_argument_rejected(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4.equal_cost_paths("agg_0_0", "tor_1_0")

    def test_paths_cached(self, fattree4):
        a = fattree4.equal_cost_paths("tor_0_0", "tor_1_1")
        b = fattree4.equal_cost_paths("tor_0_0", "tor_1_1")
        assert a is b


class TestClosStructure:
    def test_component_counts(self, clos44):
        # D_I=D_A=4: 2 intermediates, 4 aggs, 4 tors.
        assert len(clos44.cores()) == 2
        assert len(clos44.aggs()) == 4
        assert len(clos44.tors()) == 4
        assert len(clos44.hosts()) == 8

    def test_tors_dual_homed(self, clos44):
        for tor in clos44.tors():
            assert len(clos44.up_neighbors(tor)) == 2

    def test_intermediates_connect_to_all_aggs(self, clos44):
        for core in clos44.cores():
            assert sorted(clos44.down_neighbors(core)) == sorted(clos44.aggs())

    def test_inter_pod_path_count_is_2da(self, clos44):
        src, dst = "tor_0", "tor_2"
        assert clos44.pod_of(src) != clos44.pod_of(dst)
        paths = clos44.equal_cost_paths(src, dst)
        assert len(paths) == clos44.paths_per_inter_pod_pair == 2 * clos44.d_a

    def test_same_pair_tors_share_both_aggs(self, clos44):
        # tor_0 and tor_1 hang off the same aggregation pair.
        paths = clos44.equal_cost_paths("tor_0", "tor_1")
        assert len(paths) == 2
        assert all(len(p) == 3 for p in paths)

    def test_odd_radix_rejected(self):
        with pytest.raises(TopologyError):
            ClosNetwork(d_i=3, d_a=4)
        with pytest.raises(TopologyError):
            ClosNetwork(d_i=4, d_a=5)

    def test_clos_path_not_determined_by_core_alone(self, clos44):
        """The property motivating uphill+downhill tables (paper §2.3)."""
        paths = clos44.equal_cost_paths("tor_0", "tor_2")
        by_core = {}
        for p in paths:
            by_core.setdefault(p[2], []).append(p)
        assert all(len(group) > 1 for group in by_core.values())


class TestThreeTierStructure:
    def test_oversubscription_matches_paper(self, threetier_small):
        assert threetier_small.access_oversubscription == pytest.approx(2.5)
        assert threetier_small.aggregation_oversubscription == pytest.approx(1.5)

    def test_paper_sized_instance_oversubscription(self):
        # The full 8-core configuration from the Cisco reference design.
        topo = ThreeTier(num_cores=8, num_pods=2, access_per_pod=12, hosts_per_access=5)
        assert topo.access_oversubscription == pytest.approx(2.5)
        assert topo.aggregation_oversubscription == pytest.approx(1.5)

    def test_path_count(self, threetier_small):
        # 2 up-aggs x 4 cores x 2 down-aggs = 16 inter-pod paths.
        paths = threetier_small.equal_cost_paths("tor_0_0", "tor_1_0")
        assert len(paths) == 16

    def test_intra_pod_paths(self, threetier_small):
        paths = threetier_small.equal_cost_paths("tor_0_0", "tor_0_1")
        assert len(paths) == 2  # the two pod aggregation switches

    def test_invalid_params_rejected(self):
        with pytest.raises(TopologyError):
            ThreeTier(num_cores=0)


class TestMultiRootedHelpers:
    def test_tor_of_host(self, fattree4):
        assert fattree4.tor_of("h_0_0_0") == "tor_0_0"
        assert fattree4.tor_of("h_3_1_1") == "tor_3_1"

    def test_tor_of_rejects_switch(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4.tor_of("agg_0_0")

    def test_hosts_of_tor(self, fattree4):
        assert sorted(fattree4.hosts_of_tor("tor_0_0")) == ["h_0_0_0", "h_0_0_1"]

    def test_hosts_of_tor_rejects_non_tor(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4.hosts_of_tor("core_0_0")

    def test_downhill_chain_count_fattree(self, fattree4):
        # Each (core, tor) pair contributes exactly one chain in a fat-tree:
        # the core reaches every ToR through the unique agg in its row.
        chains = list(fattree4.downhill_chains())
        assert len(chains) == len(fattree4.cores()) * len(fattree4.tors())
        assert len(chains) == len(set(chains))

    def test_chains_to_tor_counts(self, fattree4, clos44):
        # Fat-tree: one address per core. Clos: cores x 2 parent aggs.
        assert len(fattree4.chains_to_tor("tor_0_0")) == 4
        assert len(clos44.chains_to_tor("tor_0")) == 4  # 2 cores x 2 aggs

    def test_host_path_expansion(self, fattree4):
        path = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        full = fattree4.host_path("h_0_0_0", "h_1_0_1", path)
        assert full[0] == "h_0_0_0" and full[-1] == "h_1_0_1"
        assert full[1:-1] == path

    def test_host_path_rejects_wrong_tor(self, fattree4):
        path = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        with pytest.raises(TopologyError):
            fattree4.host_path("h_2_0_0", "h_1_0_1", path)

    def test_host_path_rejects_same_host(self, fattree4):
        path = fattree4.equal_cost_paths("tor_0_0", "tor_0_0")[0]
        with pytest.raises(TopologyError):
            fattree4.host_path("h_0_0_0", "h_0_0_0", path)

    def test_validate_passes_on_families(self, fattree4, clos44, threetier_small):
        fattree4.validate()
        clos44.validate()
        threetier_small.validate()


class TestBuildTopology:
    def test_by_name(self):
        assert isinstance(build_topology("fattree", p=4), FatTree)
        assert isinstance(build_topology("clos", d_i=4, d_a=4), ClosNetwork)
        assert isinstance(build_topology("threetier", num_pods=2), ThreeTier)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_topology("hypercube")
