"""Figures 13-14: DARD vs TeXCP — transfer time and retransmission rate.

Paper shape: bisection bandwidth use is comparable, but TeXCP's
packet-level striping reorders packets into retransmissions (a CDF
spanning roughly 0-50%), so DARD's goodput — and FCT — come out slightly
ahead while DARD's own retransmission rate stays near zero.
"""

from repro.experiments.figures import fig13_fig14_texcp
from conftest import run_once


def test_fig13_fig14_texcp(benchmark, save_output):
    output = run_once(benchmark, fig13_fig14_texcp, duration_s=90.0)
    save_output(output)
    rows = {row["scheduler"]: row for row in output.rows}
    # DARD slightly ahead on transfer time.
    assert rows["dard"]["mean_fct_s"] <= rows["texcp"]["mean_fct_s"] * 1.05
    # TeXCP retransmits materially; DARD does not.
    assert rows["texcp"]["mean_retx_rate"] > rows["dard"]["mean_retx_rate"] * 5
    assert rows["texcp"]["max_retx_rate"] <= 0.5 + 1e-9
    assert rows["dard"]["mean_retx_rate"] < 0.02
