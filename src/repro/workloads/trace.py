"""Trace-driven workloads: replay recorded flow arrivals.

The paper could not obtain commercial datacenter traces and fell back to
synthetic patterns (§4.1); a downstream user often *can*. This module
replays a trace of ``(time_s, src, dst, size_bytes)`` rows against any
scheduler, and can record a live run back out to a trace — so synthetic
workloads can be captured once and replayed bit-identically across
scheduler comparisons or exported to other tools.

Trace file format: CSV with header ``time_s,src,dst,size_bytes``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.simulator.engine import EventEngine
from repro.topology.multirooted import MultiRootedTopology

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded flow arrival."""

    time_s: float
    src: str
    dst: str
    size_bytes: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError(f"negative arrival time {self.time_s}")
        if self.size_bytes <= 0:
            raise ConfigurationError(f"non-positive flow size {self.size_bytes}")
        if self.src == self.dst:
            raise ConfigurationError(f"flow from {self.src!r} to itself")


def load_trace(path: PathLike) -> List[TraceEntry]:
    """Read a trace CSV; entries are returned sorted by arrival time.

    Any malformed row — missing or empty columns, unparsable numbers, or
    a value :class:`TraceEntry` itself rejects (negative time,
    non-positive size, self-flow) — raises
    :class:`~repro.common.errors.ConfigurationError` naming the
    offending line, so a bad hand-edited trace points straight at its
    own defect instead of surfacing later as a crash mid-simulation.
    """
    entries = []
    columns = ("time_s", "src", "dst", "size_bytes")
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not set(columns) <= set(reader.fieldnames):
            raise ConfigurationError(
                f"trace {path} must have columns {sorted(columns)}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            line = reader.line_num
            try:
                missing = [key for key in columns if not row.get(key)]
                if missing:
                    raise ConfigurationError(f"missing value(s) for {missing}")
                entries.append(
                    TraceEntry(
                        time_s=float(row["time_s"]),
                        src=row["src"],
                        dst=row["dst"],
                        size_bytes=float(row["size_bytes"]),
                    )
                )
            except (ConfigurationError, ValueError) as err:
                raise ConfigurationError(
                    f"trace {path} line {line}: {err}"
                ) from None
    entries.sort(key=lambda e: e.time_s)
    return entries


def save_trace(entries: Sequence[TraceEntry], path: PathLike) -> int:
    """Write entries to a trace CSV; returns the number of rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "src", "dst", "size_bytes"])
        for entry in sorted(entries, key=lambda e: e.time_s):
            writer.writerow([entry.time_s, entry.src, entry.dst, entry.size_bytes])
    return len(entries)


class TraceReplay:
    """Schedule a trace's arrivals onto an engine, feeding a sink."""

    def __init__(
        self,
        engine: EventEngine,
        topology: MultiRootedTopology,
        entries: Sequence[TraceEntry],
        sink: Callable[[str, str, float], object],
    ) -> None:
        hosts = set(topology.hosts())
        for entry in entries:
            if entry.src not in hosts:
                raise ConfigurationError(f"trace source {entry.src!r} not in topology")
            if entry.dst not in hosts:
                raise ConfigurationError(f"trace dest {entry.dst!r} not in topology")
        self.engine = engine
        self.entries = sorted(entries, key=lambda e: e.time_s)
        self.sink = sink
        self.flows_replayed = 0

    def start(self) -> None:
        """Arm every arrival. Entries before ``engine.now`` are rejected."""
        for entry in self.entries:
            self.engine.schedule_at(
                entry.time_s,
                lambda e=entry: self._fire(e),
            )

    def _fire(self, entry: TraceEntry) -> None:
        self.sink(entry.src, entry.dst, entry.size_bytes)
        self.flows_replayed += 1

    @property
    def duration_s(self) -> float:
        """Arrival span of the trace (last entry's time)."""
        return self.entries[-1].time_s if self.entries else 0.0


class TraceRecorder:
    """Capture arrivals flowing through a sink into trace entries.

    Wrap any scheduler's ``place``:

    >>> recorder = TraceRecorder(engine, scheduler.place)   # doctest: +SKIP
    >>> process = ArrivalProcess(..., sink=recorder)        # doctest: +SKIP
    >>> save_trace(recorder.entries, "run.csv")             # doctest: +SKIP
    """

    def __init__(self, engine: EventEngine, sink: Callable[[str, str, float], object]) -> None:
        self.engine = engine
        self.sink = sink
        self.entries: List[TraceEntry] = []

    def __call__(self, src: str, dst: str, size_bytes: float):
        self.entries.append(
            TraceEntry(time_s=self.engine.now, src=src, dst=dst, size_bytes=size_bytes)
        )
        return self.sink(src, dst, size_bytes)
