"""Fabric-wide verification: an "fsck" for the static forwarding plane.

After tables are installed once (the NOX initialization step), nothing
ever changes them — so the whole forwarding plane can be verified
exhaustively offline:

* **reachability** — every host pair is deliverable along *every* encoded
  equal-cost path, end to end, by actually forwarding through the tables;
* **consistency** — the codec's logical decode agrees with the fabric's
  hop-by-hop behaviour on every (pair, path);
* **table audit** — per-switch rule counts by role, plus detection of
  shadowed downhill entries (a shorter prefix that can never match
  because a longer one always wins is fine; a *duplicate-length overlap*
  is not, and the tables reject those at insert time — the audit proves
  none slipped through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import RoutingError
from repro.topology.graph import NodeKind
from repro.addressing.codec import PathCodec
from repro.switches.switch import SwitchFabric


@dataclass
class VerificationReport:
    """Outcome of a full-fabric verification sweep."""

    pairs_checked: int
    paths_checked: int
    failures: List[str] = field(default_factory=list)
    table_entries_by_role: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"pairs checked : {self.pairs_checked}",
            f"paths checked : {self.paths_checked}",
            f"table entries : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.table_entries_by_role.items())),
            f"status        : {'OK' if self.ok else f'{len(self.failures)} FAILURES'}",
        ]
        lines.extend(f"  ! {failure}" for failure in self.failures[:20])
        return "\n".join(lines)


def verify_fabric(
    fabric: SwitchFabric,
    codec: PathCodec,
    max_pairs: int = 500,
) -> VerificationReport:
    """Exhaustively verify forwarding for up to ``max_pairs`` host pairs.

    Pairs are taken in deterministic sorted order; small fabrics get full
    coverage, large ones a deterministic prefix (still thousands of
    path traces).
    """
    topo = fabric.topology
    hosts = sorted(topo.hosts())
    report = VerificationReport(pairs_checked=0, paths_checked=0)

    for name, switch in sorted(fabric.switches.items()):
        role = topo.node(name).kind.value
        report.table_entries_by_role[role] = (
            report.table_entries_by_role.get(role, 0)
            + len(switch.downhill)
            + len(switch.uphill)
        )

    budget = max_pairs
    for i, src in enumerate(hosts):
        for dst in hosts[i + 1:]:
            if budget == 0:
                return report
            budget -= 1
            report.pairs_checked += 1
            src_tor = topo.tor_of(src)
            dst_tor = topo.tor_of(dst)
            for path in topo.equal_cost_paths(src_tor, dst_tor):
                report.paths_checked += 1
                try:
                    src_addr, dst_addr = codec.encode(src, dst, path)
                    decoded = codec.decode(src_addr, dst_addr)
                    if decoded != path:
                        report.failures.append(
                            f"codec mismatch {src}->{dst} via {path}: decoded {decoded}"
                        )
                        continue
                    trace = fabric.forward_trace(src, src_addr, dst_addr)
                    expected = (src,) + path + (dst,)
                    if trace != expected:
                        report.failures.append(
                            f"forwarding mismatch {src}->{dst}: {trace} != {expected}"
                        )
                except RoutingError as exc:
                    report.failures.append(f"routing error {src}->{dst} via {path}: {exc}")
    return report


def audit_table_sizes(fabric: SwitchFabric) -> Dict[str, Tuple[int, int]]:
    """Per-switch (downhill, uphill) rule counts, for capacity planning.

    Real switches have bounded TCAM; this answers "how many rules does the
    DARD scheme cost per switch role" — bounded by topology, independent
    of traffic (§2.3's scalability point).
    """
    return {
        name: (len(sw.downhill), len(sw.uphill))
        for name, sw in sorted(fabric.switches.items())
    }
