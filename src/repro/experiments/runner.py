"""Scenario runner: one (topology, pattern, scheduler, load) simulation.

All stochastic inputs derive from one seed through named RNG streams, and
the arrival process draws from a stream the scheduler never touches — so
two schedulers run against *byte-identical workloads*, which is what makes
the paper's pairwise improvement numbers meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStreams
from repro.addressing.codec import PathCodec
from repro.addressing.hierarchy import HierarchicalAddressing
from repro.baselines import (
    EcmpScheduler,
    GlobalFirstFitScheduler,
    HederaScheduler,
    PeriodicVlbScheduler,
    TexcpScheduler,
)
from repro.core.scheduler import DardScheduler
from repro.scheduling.base import Scheduler, SchedulerContext
from repro.simulator.flows import FlowRecord
from repro.simulator.network import Network
from repro.topology import build_topology
from repro.workloads import WorkloadSpec, make_arrival_process, make_pattern

def _texcp_flowlet(**kwargs) -> TexcpScheduler:
    return TexcpScheduler(granularity="flowlet", **kwargs)


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "ecmp": EcmpScheduler,
    "vlb": PeriodicVlbScheduler,
    "hedera": HederaScheduler,
    "gff": GlobalFirstFitScheduler,
    "texcp": TexcpScheduler,
    "texcp-flowlet": _texcp_flowlet,
    "dard": DardScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its registry name."""
    if name not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name](**kwargs)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one simulation scenario."""

    topology: str
    pattern: str
    scheduler: str
    arrival_rate_per_host: float
    duration_s: float
    flow_size_bytes: float
    seed: int = 0
    topology_params: dict = field(default_factory=dict)
    pattern_params: dict = field(default_factory=dict)
    scheduler_params: dict = field(default_factory=dict)
    network_params: dict = field(default_factory=dict)
    #: arrival-process kind: ``poisson`` (the paper's baseline),
    #: ``empirical`` (heavy-tailed sizes/gaps), or ``incast-barrier``
    #: (synchronized bursts); see ``repro.workloads.scenarios``.
    arrival: str = "poisson"
    arrival_params: dict = field(default_factory=dict)
    #: after arrivals stop, keep simulating until all flows finish or this
    #: much extra time elapses (flows admitted late still need to drain).
    drain_limit_s: float = 600.0
    #: failure schedule: ("fail" | "restore", time_s, node_u, node_v).
    link_events: tuple = ()
    #: when > 0, run ``Network.check_invariants()`` every this many sim
    #: seconds for the whole run (the validation layer's periodic probe).
    invariant_check_interval_s: float = 0.0


@dataclass
class ScenarioResult:
    """Completed-flow records plus control-plane accounting."""

    config: ScenarioConfig
    records: List[FlowRecord]
    flows_generated: int
    sim_time_s: float
    control_bytes: float
    control_messages: int
    control_bytes_by_kind: Dict[str, float]
    peak_elephants: int = 0
    dard_shifts: int = 0
    #: DARD only: the fleet-wide shift journal, one ``(time, host,
    #: flow id, from index, to index)`` tuple per shift in event order —
    #: the scalar-vs-batched control-plane oracle compares these.
    dard_shift_log: tuple = ()

    @property
    def fcts(self) -> List[float]:
        return [r.fct for r in self.records]

    @property
    def path_switches(self) -> List[int]:
        return [r.path_switches for r in self.records]

    @property
    def path_revisits(self) -> List[int]:
        return [r.path_revisits for r in self.records]

    @property
    def retx_rates(self) -> List[float]:
        return [r.retx_rate for r in self.records]

    @property
    def mean_fct(self) -> float:
        if not self.records:
            return float("nan")
        return sum(self.fcts) / len(self.records)

    @property
    def control_bytes_per_second(self) -> float:
        return self.control_bytes / self.sim_time_s if self.sim_time_s else 0.0


def run_scenario(
    config: ScenarioConfig,
    instrument: Optional[Callable[[Network], None]] = None,
) -> ScenarioResult:
    """Build the full stack, drive the workload, and collect results.

    ``instrument`` (optional) is called with the freshly built
    :class:`Network` before any scheduler, workload, or failure event is
    wired — the seam the validation layer uses to attach invariant
    checkers, register oracles, or (in its self-tests) inject bugs,
    without the runner knowing anything about validation.
    """
    rngs = RngStreams(config.seed)
    topology = build_topology(config.topology, **config.topology_params)
    addressing = HierarchicalAddressing(topology)
    codec = PathCodec(addressing)
    network = Network(topology, **config.network_params)
    if instrument is not None:
        instrument(network)
    if config.invariant_check_interval_s > 0:
        network.engine.schedule_every(
            config.invariant_check_interval_s, network.check_invariants
        )
    scheduler = make_scheduler(config.scheduler, **config.scheduler_params)
    scheduler.attach(
        SchedulerContext(
            network=network,
            codec=codec,
            rng=rngs.stream(f"scheduler:{config.scheduler}"),
        )
    )
    pattern = make_pattern(config.pattern, topology, **config.pattern_params)
    spec = WorkloadSpec(
        arrival_rate_per_host=config.arrival_rate_per_host,
        duration_s=config.duration_s,
        flow_size_bytes=config.flow_size_bytes,
    )
    arrivals = make_arrival_process(
        config.arrival,
        engine=network.engine,
        pattern=pattern,
        spec=spec,
        sink=scheduler.place,
        rng=rngs.stream("arrivals"),
        **config.arrival_params,
    )
    for action, when, u, v in config.link_events:
        if action == "fail":
            network.engine.schedule_at(when, lambda u=u, v=v: network.fail_link(u, v))
        elif action == "restore":
            network.engine.schedule_at(when, lambda u=u, v=v: network.restore_link(u, v))
        else:
            raise ConfigurationError(f"unknown link event action {action!r}")
    arrivals.start()
    network.engine.run_until(config.duration_s)
    # Drain: schedulers keep their periodic control loops alive, so step
    # the clock forward until the admitted flows finish (or we time out).
    deadline = config.duration_s + config.drain_limit_s
    while network.flows and network.engine.now < deadline:
        network.engine.run_until(min(network.engine.now + 5.0, deadline))
    is_dard = isinstance(scheduler, DardScheduler)
    dard_shifts = scheduler.total_shifts() if is_dard else 0
    dard_shift_log = tuple(scheduler.shift_log) if is_dard else ()
    return ScenarioResult(
        config=config,
        records=list(network.records),
        flows_generated=arrivals.flows_generated,
        sim_time_s=network.engine.now,
        control_bytes=scheduler.ledger.total_bytes,
        control_messages=scheduler.ledger.total_messages,
        control_bytes_by_kind=dict(scheduler.ledger.bytes_by_kind),
        peak_elephants=network.peak_elephants,
        dard_shifts=dard_shifts,
        dard_shift_log=dard_shift_log,
    )
