"""Table 4: average file transfer time on fat-trees, all schedulers.

Paper shape: DARD < ECMP ~= pVLB everywhere it matters; DARD within a few
percent of (or better than) the centralized simulated annealing — on the
small fat-tree DARD even wins outright.
"""

from repro.experiments.figures import tab4_fattree_fct
from conftest import run_once


def test_tab4_fattree_fct(benchmark, save_output):
    output = run_once(benchmark, tab4_fattree_fct, duration_s=60.0)
    save_output(output)
    for row in output.rows:
        if row["pattern"] == "stride":
            assert row["dard_s"] < row["ecmp_s"], row
            assert row["dard_s"] <= row["hedera_s"] * 1.15, row
        # pVLB tracks ECMP within a generous band on every pattern.
        assert abs(row["vlb_s"] - row["ecmp_s"]) / row["ecmp_s"] < 0.35, row
