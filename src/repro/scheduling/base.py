"""The scheduler plug-in interface.

A scheduler's job is (a) to pick the initial path component(s) for every new
flow and (b) optionally to run periodic control logic that re-routes live
flows. It talks to the world through a :class:`SchedulerContext`, which
bundles the network, topology, addressing codec, and a dedicated RNG
stream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.addressing.codec import PathCodec
from repro.simulator.flows import Flow, FlowComponent
from repro.simulator.network import Network
from repro.topology.multirooted import MultiRootedTopology, SwitchPath
from repro.scheduling.messages import MessageLedger


@dataclass
class SchedulerContext:
    """Everything a scheduler needs to operate."""

    network: Network
    codec: PathCodec
    rng: np.random.Generator

    @property
    def topology(self) -> MultiRootedTopology:
        return self.network.topology

    @property
    def engine(self):
        return self.network.engine


class Scheduler(abc.ABC):
    """Base class for all flow-scheduling approaches."""

    #: short identifier used in experiment configs and reports.
    name: str = "base"

    def __init__(self) -> None:
        self.ctx: Optional[SchedulerContext] = None
        self.ledger = MessageLedger()

    # -- lifecycle ------------------------------------------------------------

    def attach(self, ctx: SchedulerContext) -> None:
        """Bind to a network; subclasses register listeners/periodic control."""
        self.ctx = ctx

    # -- placement ---------------------------------------------------------------

    def place(self, src: str, dst: str, size_bytes: float) -> Flow:
        """Admit a new flow: pick components, then start it on the network."""
        components = self.choose_components(src, dst)
        return self.ctx.network.start_flow(src, dst, size_bytes, components)

    @abc.abstractmethod
    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        """Initial path component(s) for a new (src, dst) flow."""

    # -- helpers shared by implementations ------------------------------------------

    def paths_between(self, src: str, dst: str) -> List[SwitchPath]:
        """All equal-cost switch paths between two hosts' ToRs."""
        topo = self.ctx.topology
        return topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))

    def alive_paths(self, src: str, dst: str) -> List[SwitchPath]:
        """Equal-cost paths whose every hop is currently up.

        Falls back to the full path set when nothing survives (e.g. the
        host's own access link is down) — the flow is then placed and
        simply stalls until the failure heals, as real traffic would.
        """
        network = self.ctx.network
        topo = self.ctx.topology
        paths = self.paths_between(src, dst)
        if not network.failed_links:
            return paths
        alive = [
            p for p in paths if network.path_alive(topo.host_path(src, dst, p))
        ]
        return alive if alive else paths

    def evacuate_failed_link(self, u: str, v: str, pick) -> int:
        """Move single-path flows off a failed cable; returns moves made.

        ``pick(live_paths)`` chooses the replacement — hash-based for ECMP
        and Hedera (modelling the fabric's re-hash on routing
        re-convergence), uniform random for VLB. Striped (multi-component)
        flows are left to their own scheduler's control loop.
        """
        network = self.ctx.network
        moved = 0
        for flow in network.active_flows():
            if len(flow.components) != 1:
                continue
            links = flow.components[0].links()
            if (u, v) not in links and (v, u) not in links:
                continue
            live = self.alive_paths(flow.src, flow.dst)
            topo = self.ctx.topology
            live = [
                p for p in live
                if network.path_alive(topo.host_path(flow.src, flow.dst, p))
            ]
            if not live:
                continue  # no way around (access link down); flow stalls
            new_path = pick(live)
            network.reroute_flow(flow, [self.component_for(flow.src, flow.dst, new_path)])
            moved += 1
        return moved

    def component_for(self, src: str, dst: str, path: SwitchPath) -> FlowComponent:
        """Wrap a ToR-level switch path into a full host-to-host component."""
        return FlowComponent(self.ctx.topology.host_path(src, dst, path))

    def switch_path_of(self, flow: Flow) -> SwitchPath:
        """The ToR-to-ToR portion of a single-component flow's path."""
        return tuple(flow.switch_path()[1:-1])

    # -- accounting ------------------------------------------------------------------

    def control_message_bytes(self) -> float:
        """Total control-plane bytes this scheduler has generated."""
        return self.ledger.total_bytes


def encode_and_verify(codec: PathCodec, src: str, dst: str, path: SwitchPath) -> Tuple[int, int]:
    """Encode a path into an address pair and confirm it decodes back.

    DARD expresses every route choice as an address pair; this helper keeps
    schedulers honest by round-tripping through the codec rather than
    trusting the path object directly.
    """
    src_addr, dst_addr = codec.encode(src, dst, path)
    decoded = codec.decode(src_addr, dst_addr)
    if decoded != tuple(path):
        raise RuntimeError(f"codec round-trip mismatch: {path!r} -> {decoded!r}")
    return src_addr, dst_addr
