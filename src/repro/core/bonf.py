"""BoNF: link Bandwidth over the Number of elephant Flows (paper §2.2).

A link's BoNF is its bandwidth divided by the number of elephant flows
crossing it (infinite when it carries none). A path's state is the state of
its most congested link — the one with the smallest BoNF — excluding the
host-switch links, which a flow cannot route around.

The global minimum BoNF is a lower bound on the global minimum flow rate
under max-min fairness (paper Appendix A, Theorem 1), which is why DARD
uses "maximize the minimum BoNF" as its scheduling objective.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PathState:
    """The (bandwidth, flow_numbers, BoNF) triple of a path's bottleneck link."""

    bandwidth_bps: float
    flow_numbers: int

    @property
    def bonf(self) -> float:
        if self.bandwidth_bps <= 0:
            return 0.0  # dead path: never attractive, always shiftable-from
        if self.flow_numbers <= 0:
            return float("inf")
        return self.bandwidth_bps / self.flow_numbers

    def bonf_with_one_more_flow(self) -> float:
        """Estimated BoNF if one more elephant joins (Algorithm 1, line 15).

        Uses the paper's simplifying assumption that the monitor's paths do
        not overlap: the estimate only needs to be good enough to veto
        shifts that would *lower* the global minimum BoNF.
        """
        if self.bandwidth_bps <= 0:
            return 0.0
        return self.bandwidth_bps / (self.flow_numbers + 1)

    def with_one_more_flow(self) -> "PathState":
        """The state after one more elephant lands on this bottleneck.

        The optimistic within-round update of Algorithm 1: after shifting a
        flow onto a path, the daemon treats that path as carrying one more
        elephant until the next polling round refreshes ground truth.
        """
        return PathState(
            bandwidth_bps=self.bandwidth_bps, flow_numbers=self.flow_numbers + 1
        )

    def __str__(self) -> str:
        bonf = "inf" if self.flow_numbers == 0 else f"{self.bonf / 1e6:.1f}Mbps"
        return f"PathState(bw={self.bandwidth_bps / 1e6:.0f}Mbps, flows={self.flow_numbers}, BoNF={bonf})"
