"""Runtime ownership sanitizer tests: barriers, wrappers, bit-identity.

The sanitizer is the dynamic half of the parallel-safety story: the
static rules (RACE001/OWN001, see ``test_parallel_safety.py``) claim
that guarded arrays are only written by their declared writers; these
tests prove the claim holds at runtime — unsanctioned writes raise,
sanctioned paths still run, wrappers come off cleanly, and a sanitized
scenario run is bit-identical to an uninstrumented one.
"""

from pathlib import Path

import pytest

from repro.common.units import MB, MBPS
from repro.lint import LintConfig, run_lint
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree
from repro.validation.sanitizer import (
    OwnershipSanitizer,
    guarded_column_attrs,
    guarded_network_attrs,
)


REPO_FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


@pytest.fixture
def net():
    return Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))


def component(net, src, dst, index=0):
    topo = net.topology
    path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
    return FlowComponent(topo.host_path(src, dst, path))


def _hosts(net):
    hosts = net.topology.hosts()
    return hosts[0], hosts[-1]


class TestWriteBarrier:
    def test_unsanctioned_network_write_raises(self, net):
        with OwnershipSanitizer(net):
            with pytest.raises(ValueError, match="read-only"):
                net._load_array[0] = 5.0

    def test_unsanctioned_column_write_raises(self, net):
        src, dst = _hosts(net)
        flow = net.start_flow(src, dst, 1 * MB, [component(net, src, dst)])
        with OwnershipSanitizer(net):
            with pytest.raises(ValueError, match="read-only"):
                net.flow_store.remaining_bytes[flow._row] = 0.0

    def test_every_guarded_array_is_locked(self, net):
        src, dst = _hosts(net)
        net.start_flow(src, dst, 1 * MB, [component(net, src, dst)])
        with OwnershipSanitizer(net):
            for attr in guarded_network_attrs():
                assert not getattr(net, attr).flags.writeable, attr
            for attr in guarded_column_attrs():
                assert not getattr(net.flow_store, attr).flags.writeable, attr

    def test_barriers_lift_on_exit(self, net):
        with OwnershipSanitizer(net):
            pass
        net._load_array[0] = 5.0  # must not raise
        net.flow_store.rate_bps[0] = 1.0

    def test_runtime_trip_matches_static_race001_verdict(self, net, tmp_path):
        # The race001_bad fixture's crime is a non-writer mutating
        # _total_array; the sanitizer rejects the same write at runtime.
        fixture = (
            REPO_FIXTURES / "repro" / "simulator" / "race001_bad.py"
        )
        findings, _ = run_lint([str(fixture)], LintConfig())
        assert [f.code for f in findings] == ["RACE001"]
        assert "_total_array" in findings[0].message
        with OwnershipSanitizer(net):
            with pytest.raises(ValueError, match="read-only"):
                net._total_array[0] += 1


class TestSanctionedPaths:
    def test_start_flow_and_drain_run_sanitized(self, net):
        src, dst = _hosts(net)
        with OwnershipSanitizer(net):
            flow = net.start_flow(src, dst, 1 * MB, [component(net, src, dst)])
            net.engine.run_until(60.0)
        assert flow.end_time is not None

    def test_fail_and_restore_link_run_sanitized(self, net):
        link = next(iter(net.topology.links()))
        u, v = link.u, link.v
        with OwnershipSanitizer(net):
            net.fail_link(u, v)
            net.restore_link(u, v)

    def test_store_growth_rebinds_stay_guarded(self, net):
        # _grow rebinds every column; the sanitizer must re-lock the
        # *new* arrays, not the stale ones it locked at install time.
        src, dst = _hosts(net)
        with OwnershipSanitizer(net):
            for _ in range(net.flow_store.capacity + 1):
                net.start_flow(src, dst, 1 * MB, [component(net, src, dst)])
            with pytest.raises(ValueError, match="read-only"):
                net.flow_store.remaining_bytes[0] = 0.0


class TestLifecycle:
    def test_wrappers_come_off_with_last_sanitizer(self, net):
        with OwnershipSanitizer(net):
            assert hasattr(Network.start_flow, "__sanitizer_wrapped__")
        assert not hasattr(Network.start_flow, "__sanitizer_wrapped__")

    def test_unattached_instances_fall_through(self, net):
        other = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        src, dst = _hosts(other)
        with OwnershipSanitizer(net):
            # `other` has no sanitizer: the class-level wrapper takes a
            # dictionary miss and runs the original unlocked.
            other.start_flow(src, dst, 1 * MB, [component(other, src, dst)])
            other._load_array[0] = 5.0  # must not raise

    def test_install_is_idempotent(self, net):
        sanitizer = OwnershipSanitizer(net)
        sanitizer.install()
        sanitizer.install()
        sanitizer.uninstall()
        assert not hasattr(Network.start_flow, "__sanitizer_wrapped__")
        net._load_array[0] = 5.0  # must not raise


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_sanitized_case_is_bit_identical(self, seed):
        from repro.validation.fuzz import random_scenario, run_case

        config = random_scenario(seed)
        plain = run_case(config)
        sanitized = run_case(config, sanitize=True)
        assert plain.records == sanitized.records
