"""Figure 8 + Table 5: DARD path-switch stability on fat-trees.

Paper shape: 90th percentiles of 1-5 switches, maxima far below the number
of available paths (a flow finishes long before exploring all of them), and
staggered traffic flows mostly never switching.
"""

from repro.experiments.figures import fig8_tab5_fattree_switches
from conftest import run_once


def test_fig8_tab5_fattree_switches(benchmark, save_output):
    output = run_once(benchmark, fig8_tab5_fattree_switches, duration_s=60.0)
    save_output(output)
    for row in output.rows:
        # Stability: the 90th percentile is a handful of switches.
        assert row["p90"] <= 5, row
        # Max far below available paths (4 on p=4, 16 on p=8).
        available = 4 if row["size"] == "p=4" else 16
        assert row["max"] < available, row
    staggered = [r for r in output.rows if r["pattern"] == "staggered"]
    assert all(r["never_switched"] >= 0.6 for r in staggered)
