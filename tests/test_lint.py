"""dardlint engine tests: registry, suppressions, fixtures, schema, CLI.

The fixture tree under ``tests/lint_fixtures/repro/`` carries
``__init__.py`` markers so each file lints under a real ``repro.*``
module name (scope rules apply) without being importable from the
repository root.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Finding,
    LintConfig,
    all_rules,
    load_config,
    module_name_for,
    render_json,
    run_lint,
    to_document,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

REQUIRED_RULES = [
    "API001",
    "API002",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DRD001",
    "EXC001",
    "OWN001",
    "PERF001",
    "PERF002",
    "RACE001",
    "RACE002",
    "RACE003",
]

#: rule code -> fixture file stem prefix (bad/good suffixed below).
FIXTURE_FILES = {
    "DET001": "repro/simulator/det001",
    "DET002": "repro/workloads/det002",
    "DET003": "repro/simulator/det003",
    "DET004": "repro/validation/det004",
    "DRD001": "repro/workloads/drd001",
    "PERF001": "repro/simulator/perf001",
    "PERF002": "repro/simulator/perf002",
    "API001": "repro/simulator/api001",
    "API002": "repro/simulator/api002",
    "EXC001": "repro/validation/exc001",
    "OWN001": "repro/simulator/own001",
    "RACE001": "repro/simulator/race001",
    "RACE002": "repro/simulator/race002",
    "RACE003": "repro/simulator/race003",
}


def _lint(path, **config_kwargs):
    findings, _ = run_lint([str(path)], LintConfig(**config_kwargs))
    return findings


class TestRegistry:
    def test_all_required_rules_registered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes), "all_rules() must sort by code"
        for code in REQUIRED_RULES:
            assert code in codes
        assert len(codes) >= 8

    def test_rule_metadata_complete(self):
        for rule in all_rules():
            assert rule.name, rule.code
            assert rule.description, rule.code
            assert rule.scope, rule.code
            assert rule.__doc__ and rule.__doc__.strip(), rule.code

    def test_register_rejects_bad_code(self):
        from repro.lint.engine import Rule, register

        with pytest.raises(ValueError, match="must look like"):
            register(type("Bad", (Rule,), {"code": "x1", "description": "d"}))

    def test_register_rejects_duplicate_code(self):
        from repro.lint.engine import Rule, register

        with pytest.raises(ValueError, match="duplicate"):
            register(type("Dup", (Rule,), {"code": "DET001", "description": "d"}))


class TestFixtures:
    @pytest.mark.parametrize("code", sorted(FIXTURE_FILES))
    def test_bad_fixture_yields_exactly_one_expected_finding(self, code):
        path = FIXTURES / f"{FIXTURE_FILES[code]}_bad.py"
        findings = _lint(path)
        assert [f.code for f in findings] == [code], findings

    @pytest.mark.parametrize("code", sorted(FIXTURE_FILES))
    def test_good_fixture_is_clean(self, code):
        path = FIXTURES / f"{FIXTURE_FILES[code]}_good.py"
        assert _lint(path) == []

    def test_fixture_modules_get_repro_names(self):
        path = FIXTURES / "repro/simulator/det001_bad.py"
        assert module_name_for(path) == "repro.simulator.det001_bad"

    def test_whole_fixture_tree_totals(self):
        findings, files_scanned = run_lint([str(FIXTURES)], LintConfig())
        assert sorted(f.code for f in findings) == sorted(FIXTURE_FILES)
        assert files_scanned >= 2 * len(FIXTURE_FILES)


class TestSuppressions:
    def test_trailing_and_above_comment_suppress(self):
        # Both placements carry real DET001 violations; the file is clean.
        assert _lint(FIXTURES / "repro/simulator/suppressed_ok.py") == []

    def test_unrelated_code_does_not_suppress(self, tmp_path):
        source = (FIXTURES / "repro/simulator/det001_bad.py").read_text()
        target = tmp_path / "wrong_code.py"
        target.write_text(
            source.replace(
                "for link in crossing:",
                "for link in crossing:  # dardlint: disable=DET002",
            )
        )
        findings = _lint(target, include=("*",), scopes={"DET001": ("*",)})
        assert [f.code for f in findings] == ["DET001"]

    def test_all_keyword_suppresses_everything(self, tmp_path):
        source = (FIXTURES / "repro/simulator/det001_bad.py").read_text()
        target = tmp_path / "all_off.py"
        target.write_text(
            source.replace(
                "for link in crossing:",
                "for link in crossing:  # dardlint: disable=ALL",
            )
        )
        assert _lint(target, include=("*",), scopes={"DET001": ("*",)}) == []


class TestConfig:
    def test_pyproject_config_matches_builtin_defaults(self):
        # The committed [tool.dardlint] must mirror LintConfig() defaults:
        # pre-3.11 interpreters without tomli silently fall back to them.
        loaded = load_config(REPO_ROOT / "src")
        defaults = LintConfig()
        assert loaded.include == defaults.include
        assert loaded.exclude == defaults.exclude
        assert loaded.disable == defaults.disable
        for rule in all_rules():
            assert loaded.rule_scope(rule) == rule.scope, rule.code
            assert loaded.rule_exempt(rule) == rule.exempt, rule.code

    def test_disable_drops_rule(self):
        path = FIXTURES / "repro/simulator/det001_bad.py"
        assert _lint(path, disable=("DET001",)) == []

    def test_exclude_skips_module(self):
        path = FIXTURES / "repro/simulator/det001_bad.py"
        findings, files_scanned = run_lint(
            [str(path)], LintConfig(exclude=("repro.simulator",))
        )
        assert findings == [] and files_scanned == 0

    def test_out_of_scope_module_not_checked(self):
        # PERF001 is scoped to repro.simulator; the same source elsewhere
        # must not be flagged.
        source = (FIXTURES / "repro/simulator/perf001_bad.py").read_text()
        target = FIXTURES / "repro/workloads"
        assert module_name_for(target / "x.py").startswith("repro.workloads")
        findings = [
            f
            for f in _lint(FIXTURES / "repro/workloads")
            if f.code == "PERF001"
        ]
        assert findings == []
        assert "PERF001" in {f.code for f in _lint(FIXTURES / "repro/simulator")}
        assert "_refill_full" in source  # the hot name is what scope protects


class TestReporting:
    def test_json_schema(self):
        findings, files_scanned = run_lint([str(FIXTURES)], LintConfig())
        document = json.loads(render_json(findings, files_scanned))
        assert document["tool"] == "dardlint"
        assert document["schema_version"] == 2
        assert document["ok"] is False
        assert document["files_scanned"] == files_scanned
        assert document["files_skipped"] == 0
        assert {rule["code"] for rule in document["rules"]} >= set(REQUIRED_RULES)
        assert sum(document["counts"].values()) == len(findings)
        for entry in document["findings"]:
            assert set(entry) == {"path", "line", "col", "code", "message"}

    def test_clean_document_ok(self):
        document = to_document([], 5)
        assert document["ok"] is True and document["findings"] == []

    def test_finding_render_format(self):
        finding = Finding("a.py", 3, 7, "DET001", "msg")
        assert finding.render() == "a.py:3:7: DET001 msg"

    def test_unparseable_file_surfaces_as_drd000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = _lint(bad, include=("*",))
        assert [f.code for f in findings] == ["DRD000"]


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        findings, files_scanned = run_lint(
            [str(REPO_ROOT / "src" / "repro")], load_config(REPO_ROOT / "src")
        )
        assert findings == [], [f.render() for f in findings]
        assert files_scanned > 50

    def test_scenario_modules_are_det002_clean(self):
        # The adversarial scenario engine lives or dies on seed purity:
        # every sampler must draw from an injected Generator, never the
        # global RNG or the wall clock. Scan the scenario-engine modules
        # explicitly so a regression names the file, not just "src".
        modules = [
            REPO_ROOT / "src" / "repro" / "workloads" / "scenarios.py",
            REPO_ROOT / "src" / "repro" / "workloads" / "composite.py",
            REPO_ROOT / "src" / "repro" / "simulator" / "detectors.py",
            REPO_ROOT / "src" / "repro" / "validation" / "fuzz.py",
        ]
        for module in modules:
            assert module.exists(), module
        findings, files_scanned = run_lint(
            [str(m) for m in modules], load_config(REPO_ROOT / "src")
        )
        det002 = [f for f in findings if f.code == "DET002"]
        assert det002 == [], [f.render() for f in det002]
        assert files_scanned == len(modules)

    def test_cli_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src" / "repro")]) == 0
        assert "dardlint: clean" in capsys.readouterr().out

    def test_cli_lint_fixtures_exits_nonzero(self, capsys):
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "finding(s)" in out

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in REQUIRED_RULES:
            assert code in out

    def test_cli_json_output_file(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        code = main(["lint", str(FIXTURES), "--format", "json",
                     "--output", str(report)])
        capsys.readouterr()
        assert code == 1
        document = json.loads(report.read_text())
        assert document["ok"] is False


class TestTypeGate:
    """The mypy strict subset — runs only where the dev extra is installed."""

    def test_mypy_strict_subset(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file",
             str(REPO_ROOT / "pyproject.toml"), "-p", "repro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
