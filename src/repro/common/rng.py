"""Named, deterministic random-number streams.

Every stochastic component of an experiment (arrival process, ECMP hashing,
VLB re-picks, DARD's randomized scheduling jitter, simulated annealing, ...)
draws from its own named stream derived from a single experiment seed. Two
benefits:

* experiments are exactly reproducible from one integer seed, and
* adding draws to one component never perturbs another component's sequence,
  so scheduler comparisons see identical workloads.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A factory of independent ``numpy.random.Generator`` streams.

    Each distinct name maps to a generator seeded by ``(seed, name)``.
    Repeated calls with the same name return the *same* generator object, so
    a component can re-fetch its stream cheaply.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory (e.g. one per scheduler under comparison)."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
