"""Tests for prefixes, addresses, and the paper's decimal notation."""

import pytest

from repro.common.errors import AddressingError
from repro.addressing.prefix import Prefix, format_address, parse_address


class TestAddressFormatting:
    def test_round_trip(self):
        for text in ["10.0.0.0", "10.4.16.0", "255.255.255.255", "0.0.0.0"]:
            assert format_address(parse_address(text)) == text

    def test_parse_rejects_malformed(self):
        for bad in ["10.0.0", "10.0.0.0.0", "10.0.0.x", "10.0.0.300"]:
            with pytest.raises(AddressingError):
                parse_address(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressingError):
            format_address(1 << 32)
        with pytest.raises(AddressingError):
            format_address(-1)


class TestPrefixBasics:
    def test_parse_and_str(self):
        pfx = Prefix.parse("10.4.0.0/14")
        assert str(pfx) == "10.4.0.0/14"
        assert pfx.length == 14

    def test_nonzero_host_bits_rejected(self):
        with pytest.raises(AddressingError):
            Prefix(parse_address("10.0.0.1"), 8)

    def test_length_bounds(self):
        with pytest.raises(AddressingError):
            Prefix(0, 33)
        with pytest.raises(AddressingError):
            Prefix(0, -1)

    def test_malformed_parse(self):
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0")
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0/x")


class TestSubdivision:
    def test_paper_example_core_prefix(self):
        """Paper Figure 2: core_1 gets 10.4.0.0/14 under 6-bit levels."""
        base = Prefix.parse("10.0.0.0/8")
        assert str(base.subdivide(1, 6)) == "10.4.0.0/14"

    def test_paper_example_subtree_prefixes(self):
        """core_1's children get 10.4.16.0/20 and 10.4.32.0/20."""
        core = Prefix.parse("10.4.0.0/14")
        assert str(core.subdivide(1, 6)) == "10.4.16.0/20"
        assert str(core.subdivide(2, 6)) == "10.4.32.0/20"

    def test_paper_example_tor_prefixes(self):
        """aggr_1's children include 10.4.16.64/26 and 10.4.16.128/26."""
        agg = Prefix.parse("10.4.16.0/20")
        assert str(agg.subdivide(1, 6)) == "10.4.16.64/26"
        assert str(agg.subdivide(2, 6)) == "10.4.16.128/26"

    def test_children_disjoint_and_contained(self):
        base = Prefix.parse("10.0.0.0/8")
        kids = [base.subdivide(i, 4) for i in range(16)]
        for i, a in enumerate(kids):
            assert base.contains_prefix(a)
            for b in kids[i + 1:]:
                assert not a.overlaps(b)

    def test_index_out_of_range(self):
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0/8").subdivide(64, 6)

    def test_cannot_exceed_32_bits(self):
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0/30").subdivide(0, 6)

    def test_zero_child_bits_rejected(self):
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0/8").subdivide(0, 0)


class TestContainment:
    def test_contains_address(self):
        pfx = Prefix.parse("10.4.0.0/14")
        assert pfx.contains_address(parse_address("10.4.16.2"))
        assert not pfx.contains_address(parse_address("10.8.0.1"))

    def test_contains_prefix_is_not_symmetric(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.4.0.0/14")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.overlaps(inner) and inner.overlaps(outer)

    def test_address_indexing(self):
        pfx = Prefix.parse("10.4.16.64/26")
        assert format_address(pfx.address(2)) == "10.4.16.66"
        with pytest.raises(AddressingError):
            pfx.address(64)


class TestDecimalGroups:
    def test_paper_notation(self):
        """Address 10.4.16.66 renders as (10, 1, 1, 1, 2) in 6-bit groups:
        the paper's (core, port_core, port_aggr, host) decimal notation."""
        pfx = Prefix(parse_address("10.4.16.64"), 32)
        assert pfx.decimal_groups() == (10, 1, 1, 1, 0)

    def test_prefix_notation(self):
        assert Prefix.parse("10.4.16.0/20").decimal_groups() == (10, 1, 1, 0, 0)

    def test_incompatible_group_width_rejected(self):
        with pytest.raises(AddressingError):
            Prefix.parse("10.0.0.0/8").decimal_groups(bits_per_group=7)

    def test_ordering_is_total(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.4.0.0/14")
        assert a < b  # dataclass order: by (value, length)
