"""Incremental component-scoped reallocation: equivalence and telemetry.

The contract under test is bit-exactness: a network running with
``incremental_realloc=True`` must produce exactly the flow records — same
ids, same start/end times to the last float bit, same path switches — as
the same scenario re-filled globally on every membership change. The
fuzz-backed cases route every event through the live differential oracle
(:func:`~repro.validation.oracles.check_incremental_against_full`) as
well, so a splice bug fails at the event where it happens, not at the end.
"""

import dataclasses

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.simulator import FlowComponent, Network
from repro.simulator.components import FlowLinkComponents
from repro.topology import FatTree
from repro.validation.fuzz import random_scenario, run_case
from repro.validation.oracles import check_incremental_against_full

BASE = ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="stride",
    scheduler="ecmp",
    arrival_rate_per_host=0.08,
    duration_s=12.0,
    flow_size_bytes=16 * MB,
    seed=5,
)


def _records(config, incremental):
    config = dataclasses.replace(
        config, network_params={"incremental_realloc": incremental}
    )
    result = run_scenario(config)
    return [
        (r.flow_id, r.src, r.dst, r.start_time, r.end_time,
         r.path_switches, r.retransmitted_bytes)
        for r in result.records
    ]


def _stride_network(incremental=True):
    """A p=4 network with one pod-0 flow and one pod-2<->3 flow.

    The two flows share no link, so they live in different flow-link
    components and membership changes to one leave the other untouched.
    """
    net = Network(
        FatTree(p=4, link_bandwidth_bps=100 * MBPS),
        incremental_realloc=incremental,
    )
    topo = net.topology
    flows = []
    # Different sizes so the completions are staggered: each completion
    # then dirties one component while the other flow is still live.
    for src, dst, size in (
        ("h_0_0_0", "h_0_1_0", 16e6),
        ("h_2_0_0", "h_3_0_0", 64e6),
    ):
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[0]
        flows.append(
            net.start_flow(src, dst, size, [FlowComponent(topo.host_path(src, dst, path))])
        )
    net.engine.run_until(0.001)
    return net, flows


class TestEquivalence:
    @pytest.mark.parametrize("scheduler", ["ecmp", "dard", "vlb"])
    def test_records_identical_across_modes(self, scheduler):
        config = dataclasses.replace(BASE, scheduler=scheduler)
        assert _records(config, True) == _records(config, False)

    def test_records_identical_with_link_failures(self):
        config = dataclasses.replace(
            BASE,
            scheduler="dard",
            link_events=(
                ("fail", 2.0, "agg_0_0", "core_0_0"),
                ("restore", 6.0, "agg_0_0", "core_0_0"),
                ("fail", 8.0, "tor_1_0", "agg_1_0"),
            ),
        )
        full = _records(config, False)
        incremental = _records(config, True)
        assert full and incremental == full

    def test_fuzz_cases_pass_live_oracle(self):
        # run_case attaches check_incremental_against_full to the
        # after-event hook; seed 1 is failure-free, seed 0 schedules
        # fail/restore events (guarded by the assertion below).
        for seed in (1, 0):
            run_case(random_scenario(seed))
        assert random_scenario(0).link_events

    def test_oracle_catches_a_corrupted_rate(self):
        from repro.common.errors import OracleViolation
        import math

        net, flows = _stride_network()
        check_incremental_against_full(net)  # clean
        flows[0].component_rates[0] = math.nextafter(
            flows[0].component_rates[0], float("inf")
        )
        with pytest.raises(OracleViolation):
            check_incremental_against_full(net)


class TestTelemetry:
    def test_disjoint_flows_fill_a_strict_subset(self):
        net, flows = _stride_network()
        stats = net.perf_stats()
        base_subset = stats["realloc_subset"]
        # Completing the pod-0 flow dirties only its component.
        net.engine.run_until_idle(hard_limit=60.0)
        stats = net.perf_stats()
        assert stats["realloc_incremental"] > 0
        assert stats["realloc_subset"] > base_subset
        assert stats["flows_preserved"] > 0
        assert stats["realloc_full"] + stats["realloc_incremental"] == stats["realloc_calls"]

    def test_failure_forces_a_full_refill(self):
        net, _ = _stride_network()
        before = net.perf_stats()["realloc_full"]
        net.fail_link("agg_0_0", "core_0_0")
        assert net.perf_stats()["realloc_full"] == before + 1

    def test_full_mode_never_goes_incremental(self):
        net, _ = _stride_network(incremental=False)
        net.engine.run_until_idle(hard_limit=60.0)
        stats = net.perf_stats()
        assert stats["realloc_incremental"] == 0
        assert stats["realloc_full"] == stats["realloc_calls"]


class TestComponentStructure:
    def test_attach_detach_membership(self):
        comps = FlowLinkComponents(6)
        comps.attach(1, np.array([0, 1], dtype=np.intp))
        comps.attach(2, np.array([3, 4], dtype=np.intp))
        assert comps.live_components == 2
        tracked, memberships = comps.membership_audit()
        assert tracked == {1, 2} and memberships == 2
        # A flow spanning both merges them.
        comps.attach(3, np.array([1, 3], dtype=np.intp))
        assert comps.live_components == 1
        comps.detach(3, np.array([1, 3], dtype=np.intp))
        # Detach never splits: the merged component persists until rebuild.
        assert comps.live_components == 1
        assert comps.departures == 1

    def test_consume_dirty_returns_component_flows(self):
        comps = FlowLinkComponents(4)
        comps.attach(7, np.array([0, 1], dtype=np.intp))
        comps.attach(8, np.array([2, 3], dtype=np.intp))
        touched, flow_ids = comps.consume_dirty()
        assert touched == 2 and flow_ids == [7, 8]
        # Consuming clears the dirty set.
        assert comps.consume_dirty() == (0, [])

    def test_epoch_rebuild_restores_exact_partition(self):
        net, flows = _stride_network()
        comps = net._components
        assert comps.live_components == 2
        # Reroute merges nothing here, but departures accumulate; force
        # the epoch threshold and verify the next dirty fill rebuilds.
        comps.departures = 10_000
        rebuilds = net.perf_stats()["component_rebuilds"]
        net.start_flow(
            "h_0_0_1", "h_0_1_1",
            8e6,
            [FlowComponent(net.topology.host_path(
                "h_0_0_1", "h_0_1_1",
                net.topology.equal_cost_paths("tor_0_0", "tor_0_1")[0],
            ))],
        )
        net.engine.run_until(net.engine.now + 0.001)
        assert net.perf_stats()["component_rebuilds"] == rebuilds + 1
        assert comps.departures == 0


class TestBatchPathState:
    def test_batch_matches_scalar_path_state(self):
        net, _ = _stride_network()
        topo = net.topology
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        ids = [net.index_switch_path(p) for p in paths]
        indptr = np.zeros(len(ids) + 1, dtype=np.intp)
        np.cumsum([a.size for a in ids], out=indptr[1:])
        batch = net.batch_path_state(np.concatenate(ids), indptr)
        for path, state in zip(paths, batch):
            scalar = net.path_state(path)
            assert state == scalar

    def test_switch_link_mask_drops_host_hops(self):
        net, _ = _stride_network()
        host_path = net.topology.host_path(
            "h_0_0_0", "h_1_0_0",
            net.topology.equal_cost_paths("tor_0_0", "tor_1_0")[0],
        )
        ids = net.index_switch_path(host_path)
        mask = net.link_index.switch_link_mask
        assert mask[ids].all()
        # The host access hops were dropped: 2 fewer links than hops.
        assert ids.size == len(host_path) - 1 - 2

    def test_empty_rows_are_rejected(self):
        from repro.common.errors import SimulationError

        net, _ = _stride_network()
        with pytest.raises(SimulationError):
            net.batch_path_state(
                np.empty(0, dtype=np.intp), np.zeros(2, dtype=np.intp)
            )
