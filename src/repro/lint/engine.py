"""dardlint core: rule registry, config, suppressions, and the lint driver.

The engine is deliberately small: a :class:`Rule` is a class with a
``code``, a ``description``, a default module ``scope``, and a
``check(ctx)`` generator over :class:`Finding`; the driver parses each
file once, hands the shared :class:`ModuleContext` to every rule whose
scope covers the file's dotted module name, and filters the results
through per-line ``# dardlint: disable=<CODE>`` suppressions. (Doc
examples here spell the code as ``<CODE>`` so the scanner — which
matches physical lines, docstrings included — does not read them as
real, and then unused, suppressions.)

Scopes and suppressions exist because dardlint's rules encode *semantic*
contracts (determinism, hot-path discipline, mutation ownership — see
DESIGN.md "Static guarantees"), and semantic contracts have legitimate,
documented exceptions: wall-clock telemetry that never feeds simulation
state, a fuzzer that records crashes as findings. A suppression is the
in-tree record that a human audited the site; the rationale belongs in
the trailing comment next to it.

Configuration lives in ``pyproject.toml`` under ``[tool.dardlint]``:

* ``include`` / ``exclude`` — dotted module prefixes linted / skipped;
* ``[tool.dardlint.scopes]`` — per-rule scope overrides (module-prefix
  lists), replacing the rule's built-in default scope;
* ``[tool.dardlint.exempt]`` — per-rule module-prefix exemptions *added*
  to the rule's built-in exemptions;
* ``disable`` — rule codes switched off entirely.

``tomllib`` is only available on Python 3.11+; on older interpreters the
engine falls back to the built-in defaults, which are kept identical to
the committed pyproject section so behavior does not depend on the
interpreter version.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "ProgramContext",
    "Rule",
    "all_rules",
    "load_config",
    "module_name_for",
    "register",
    "run_lint",
    "run_lint_result",
]

#: Matches a suppression comment anywhere in a physical line. Codes may be
#: followed by free-form rationale text: ``# dardlint: disable=<CODE>
#: (wall-clock telemetry only)``.
_SUPPRESS_RE = re.compile(r"#\s*dardlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

_CODE_RE = re.compile(r"^[A-Z]{3,4}[0-9]{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Clang-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ModuleContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: Path, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions, self._suppression_cols = _scan_suppressions(self.lines)
        #: Suppression-comment lines that matched at least one finding;
        #: the driver reports the rest as DRD001 (unused suppression).
        self.used_suppression_lines: Set[int] = set()
        #: The whole-program view (every context in this lint run plus a
        #: shared analysis cache); set by the driver, ``None`` when a rule
        #: is exercised directly against a lone context.
        self.program: Optional["ProgramContext"] = None

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a per-line disable comment covers this finding.

        A match records the comment's line in ``used_suppression_lines``
        so the driver can flag leftover suppressions (DRD001).
        """
        codes = self._suppressions.get(finding.line)
        if codes is not None and (finding.code in codes or "ALL" in codes):
            self.used_suppression_lines.add(finding.line)
            return True
        # A comment-only line suppresses the statement directly below it.
        above = finding.line - 1
        if 1 <= above <= len(self.lines):
            text = self.lines[above - 1].lstrip()
            if text.startswith("#"):
                codes = self._suppressions.get(above)
                if codes is not None and (finding.code in codes or "ALL" in codes):
                    self.used_suppression_lines.add(above)
                    return True
        return False


class ProgramContext:
    """All parsed modules of one lint run, plus a shared analysis cache.

    Interprocedural rules (the RACE/OWN family) need the whole program,
    not one file; they build their analysis once, stash it under a key in
    ``cache``, and every later module's ``check()`` reuses it.
    """

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts: List[ModuleContext] = list(contexts)
        self.cache: Dict[str, object] = {}


def _scan_suppressions(
    lines: Sequence[str],
) -> Tuple[Dict[int, Set[str]], Dict[int, int]]:
    """Per-line suppressed rule codes (and comment columns) from
    ``# dardlint: disable=`` comments."""
    out: Dict[int, Set[str]] = {}
    cols: Dict[int, int] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
        if codes:
            out[number] = codes
            cols[number] = match.start() + 1
    return out, cols


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``.

    ``scope`` is the tuple of dotted module prefixes the rule applies to
    (``"repro.simulator"`` covers the package and everything under it);
    ``exempt`` lists module prefixes carved out of that scope (e.g. the
    one module allowed to touch global RNG state). Both are overridable
    from pyproject.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    scope: Tuple[str, ...] = ("repro",)
    exempt: Tuple[str, ...] = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (suppressions filtered later)."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


class UnusedSuppressionRule(Rule):
    """A ``# dardlint: disable=<CODE>`` comment that suppresses nothing.

    Suppressions are the in-tree record that a human audited a real
    finding; once the finding is gone the comment is stale documentation
    that silently disarms the rule for whatever lands on that line next.
    The driver emits DRD001 after all other rules have run (only the
    driver knows which suppressions matched), so ``check`` yields
    nothing; the class exists to carry metadata and scope/disable
    configuration like any other rule.
    """

    code = "DRD001"
    name = "unused-suppression"
    description = "suppression comment matches no finding on its line"
    scope = ("repro",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code {cls.code!r} must look like ABC123")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    if not cls.description:
        raise ValueError(f"rule {cls.code} needs a description")
    _REGISTRY[cls.code] = cls
    return cls


register(UnusedSuppressionRule)


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by code (import-order free)."""
    # Importing the rules package triggers registration of every module in
    # repro/lint/rules/ (see its __init__).
    from repro.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


# -- configuration -------------------------------------------------------------


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults merged with pyproject)."""

    include: Tuple[str, ...] = ("repro",)
    exclude: Tuple[str, ...] = ()
    scopes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    exempt: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    disable: Tuple[str, ...] = ()
    #: Transitional escape hatch (``--allow-unused-suppressions``): keep
    #: DRD001 registered but skip reporting leftover disable comments.
    allow_unused_suppressions: bool = False

    def rule_scope(self, rule: Type[Rule]) -> Tuple[str, ...]:
        """Effective module-prefix scope: pyproject override or the rule's."""
        return self.scopes.get(rule.code, rule.scope)

    def rule_exempt(self, rule: Type[Rule]) -> Tuple[str, ...]:
        """Effective exemptions: the rule's own plus pyproject additions."""
        return rule.exempt + self.exempt.get(rule.code, ())


def _module_matches(module: str, prefixes: Iterable[str]) -> bool:
    for prefix in prefixes:
        if prefix in ("", "*"):
            return True
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def _load_toml(path: Path) -> Optional[dict]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - version-dependent
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def _find_pyproject(start: Path) -> Optional[Path]:
    probe = start if start.is_dir() else start.parent
    for directory in (probe, *probe.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Build the configuration, honoring ``[tool.dardlint]`` when readable.

    ``start`` anchors the upward pyproject search (defaults to the current
    directory). Missing file, missing section, or an interpreter without a
    TOML parser all fall back to the built-in defaults.
    """
    config = LintConfig()
    pyproject = _find_pyproject(Path(start) if start is not None else Path.cwd())
    if pyproject is None:
        return config
    document = _load_toml(pyproject)
    if not document:
        return config
    section = document.get("tool", {}).get("dardlint")
    if not isinstance(section, dict):
        return config
    if "include" in section:
        config.include = tuple(section["include"])
    if "exclude" in section:
        config.exclude = tuple(section["exclude"])
    if "disable" in section:
        config.disable = tuple(str(c).upper() for c in section["disable"])
    for key, out in (("scopes", config.scopes), ("exempt", config.exempt)):
        table = section.get(key)
        if isinstance(table, dict):
            for code, prefixes in sorted(table.items()):
                out[str(code).upper()] = tuple(prefixes)
    return config


# -- driver --------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, by walking up through ``__init__.py``.

    A file outside any package lints under its bare stem — fixture trees
    in tests get real ``repro.*`` names by shipping ``__init__.py``
    markers, without being importable from the repository root.
    """
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


def _iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``files_skipped`` counts Python files that were reachable from the
    given paths but fell outside the configured ``include`` scopes (or
    matched ``exclude``) — reported so out-of-scope code is visibly
    skipped rather than silently absent. ``program`` carries the parsed
    contexts and the interprocedural analysis cache for consumers like
    ``--parallel-safety-report``.
    """

    findings: List[Finding]
    files_scanned: int
    files_skipped: int
    program: ProgramContext


def _collect_contexts(
    paths: Sequence[str], config: LintConfig
) -> Tuple[List[ModuleContext], List[Finding], int]:
    """Parse every in-scope file; returns contexts, DRD000s, skip count."""
    contexts: List[ModuleContext] = []
    parse_findings: List[Finding] = []
    files_skipped = 0
    for file_path in _iter_python_files(paths):
        module = module_name_for(file_path)
        if not _module_matches(module, config.include) or _module_matches(
            module, config.exclude
        ):
            files_skipped += 1
            continue
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError, ValueError) as error:
            parse_findings.append(
                Finding(str(file_path), 1, 1, "DRD000", f"could not parse: {error}")
            )
            continue
        contexts.append(ModuleContext(file_path, module, source, tree))
    return contexts, parse_findings, files_skipped


def run_lint_result(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> LintResult:
    """Lint files/directories; the full-fidelity entry point.

    Unreadable or syntactically invalid files surface as ``DRD000``
    findings rather than crashing the run — a lint gate must never be
    dodged by an unparseable file. Every in-scope file is parsed before
    any rule runs so interprocedural rules see the whole program.
    """
    if config is None:
        config = load_config(Path(paths[0]) if paths else None)
    rule_classes = [
        cls for cls in (all_rules() if rules is None else list(rules))
        if cls.code not in config.disable
    ]
    contexts, findings, files_skipped = _collect_contexts(paths, config)
    files_scanned = len(contexts) + len(findings)
    program = ProgramContext(contexts)
    drd001 = next(
        (cls for cls in rule_classes if cls.code == UnusedSuppressionRule.code), None
    )
    for ctx in contexts:
        ctx.program = program
        for cls in rule_classes:
            if not _module_matches(ctx.module, config.rule_scope(cls)):
                continue
            if _module_matches(ctx.module, config.rule_exempt(cls)):
                continue
            for finding in cls().check(ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)
        # Unused-suppression pass: only the driver knows which disable
        # comments matched a finding, so DRD001 is emitted here rather
        # than from a check() body.
        if (
            drd001 is None
            or config.allow_unused_suppressions
            or not _module_matches(ctx.module, config.rule_scope(drd001))
            or _module_matches(ctx.module, config.rule_exempt(drd001))
        ):
            continue
        for line in sorted(ctx._suppressions):
            if line in ctx.used_suppression_lines:
                continue
            finding = Finding(
                path=str(ctx.path),
                line=line,
                col=ctx._suppression_cols.get(line, 1),
                code=UnusedSuppressionRule.code,
                message=(
                    "suppression comment matches no finding "
                    f"({', '.join(sorted(ctx._suppressions[line]))}); remove it "
                    "or pass --allow-unused-suppressions during transitions"
                ),
            )
            if not ctx.suppressed(finding):
                findings.append(finding)
    findings.sort()
    return LintResult(findings, files_scanned, files_skipped, program)


def run_lint(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> Tuple[List[Finding], int]:
    """Compatibility wrapper: ``(sorted findings, files scanned)``."""
    result = run_lint_result(paths, config, rules)
    return result.findings, result.files_scanned
