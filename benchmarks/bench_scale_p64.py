"""Scale check: p=64 fat-tree (65,536 hosts), 8x past the paper's largest.

The columnar FlowStore is what makes five-digit host counts tractable on
the data plane: with tens of thousands of concurrent flows, the per-event
settle/ETA passes are single numpy sweeps over the SoA columns instead of
Python loops over ``flows.values()``. Together with the batched control
plane (monitor registry + matrix Algorithm 1) this bench pushes to 65,536
hosts and checks the paper's story survives: DARD still beats ECMP under
stride at a scale three orders of magnitude past the testbed.

The full run is a multi-minute simulation, so every knob is
env-overridable for CI's short budget: ``BENCH_SCALE_P64_DURATION``
(default 10 sim-s), ``BENCH_SCALE_P64_RATE`` (arrivals/host/s) and
``BENCH_SCALE_P64_DRAIN`` (post-arrival drain cap). Both schedulers must
complete flows and report a positive mean FCT at any budget; the
DARD-vs-ECMP improvement is reported in the notes rather than gated —
at short CI budgets the drain cap can truncate either side's tail. Raw
rows land in ``benchmarks/results/BENCH_scale_p64.json``.
"""

import json
import os
import pathlib

import numpy as np

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, improvement, run_scenario
from repro.experiments.figures import ExperimentOutput

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DURATION_S = float(os.environ.get("BENCH_SCALE_P64_DURATION", "10"))
RATE = float(os.environ.get("BENCH_SCALE_P64_RATE", "0.003"))
DRAIN_S = float(os.environ.get("BENCH_SCALE_P64_DRAIN", "300"))


def _run_pair():
    base = dict(
        topology="fattree",
        topology_params={"p": 64, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=RATE,
        duration_s=DURATION_S,
        flow_size_bytes=128 * MB,
        seed=1,
        drain_limit_s=DRAIN_S,
    )
    ecmp = run_scenario(ScenarioConfig(scheduler="ecmp", **base))
    dard = run_scenario(ScenarioConfig(scheduler="dard", **base))
    rows = [
        {
            "scheduler": name,
            "hosts": 65536,
            "flows": len(result.records),
            "mean_fct_s": result.mean_fct,
            "shifts": result.dard_shifts,
            "p90_switches": float(np.percentile(result.path_switches, 90))
            if result.path_switches
            else 0.0,
        }
        for name, result in [("ecmp", ecmp), ("dard", dard)]
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scale_p64.json").write_text(
        json.dumps({"experiment": "scale_p64", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "scale_p64",
        "p=64 fat-tree (65,536 hosts), stride: DARD vs ECMP at scale",
        rows=rows,
        notes=f"improvement: {improvement(ecmp.mean_fct, dard.mean_fct):.1%}, "
        f"duration {DURATION_S:.0f}s, rate {RATE}/host/s",
    )


def test_scale_p64(benchmark, save_output):
    output = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    save_output(output)
    by_sched = {row["scheduler"]: row for row in output.rows}
    assert by_sched["ecmp"]["flows"] > 0
    assert by_sched["dard"]["flows"] > 0
    assert by_sched["ecmp"]["mean_fct_s"] > 0.0
    assert by_sched["dard"]["mean_fct_s"] > 0.0
    # Stability at scale: with 1024 equal-cost paths per pair and light
    # per-host load, 90% of flows never move at all.
    assert by_sched["dard"]["p90_switches"] <= 1
