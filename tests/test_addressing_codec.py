"""Tests for the path <-> address-pair codec."""

import pytest

from repro.common.errors import AddressingError, RoutingError
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.topology import ClosNetwork, FatTree, ThreeTier


class TestEncodeDecodeFatTree:
    def test_round_trip_all_inter_pod_paths(self, fattree4, fattree4_codec):
        src, dst = "h_0_0_0", "h_1_1_1"
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_1_1")
        for path in paths:
            src_addr, dst_addr = fattree4_codec.encode(src, dst, path)
            assert fattree4_codec.decode(src_addr, dst_addr) == path

    def test_each_path_has_distinct_address_pair(self, fattree4, fattree4_codec):
        src, dst = "h_0_0_0", "h_2_0_0"
        pairs = {
            fattree4_codec.encode(src, dst, p)
            for p in fattree4.equal_cost_paths("tor_0_0", "tor_2_0")
        }
        assert len(pairs) == 4

    def test_intra_pod_round_trip(self, fattree4, fattree4_codec):
        src, dst = "h_0_0_0", "h_0_1_0"
        for path in fattree4.equal_cost_paths("tor_0_0", "tor_0_1"):
            src_addr, dst_addr = fattree4_codec.encode(src, dst, path)
            assert fattree4_codec.decode(src_addr, dst_addr) == path

    def test_same_tor_decodes_trivially(self, fattree4, fattree4_codec):
        src, dst = "h_0_0_0", "h_0_0_1"
        src_addr, dst_addr = fattree4_codec.encode(src, dst, ("tor_0_0",))
        assert fattree4_codec.decode(src_addr, dst_addr) == ("tor_0_0",)

    def test_endpoints(self, fattree4, fattree4_codec):
        src, dst = "h_0_0_0", "h_3_1_1"
        path = fattree4.equal_cost_paths("tor_0_0", "tor_3_1")[2]
        src_addr, dst_addr = fattree4_codec.encode(src, dst, path)
        assert fattree4_codec.endpoints(src_addr, dst_addr) == (src, dst)


class TestEncodeValidation:
    def test_path_must_connect_the_hosts(self, fattree4, fattree4_codec):
        path = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        with pytest.raises(AddressingError):
            fattree4_codec.encode("h_2_0_0", "h_1_0_0", path)
        with pytest.raises(AddressingError):
            fattree4_codec.encode("h_0_0_0", "h_2_0_0", path)

    def test_bad_path_length(self, fattree4, fattree4_codec):
        with pytest.raises(AddressingError):
            fattree4_codec.encode("h_0_0_0", "h_1_0_0", ("tor_0_0", "tor_1_0"))


class TestDecodeValidation:
    def test_cross_tree_pair_rejected(self, fattree4, fattree4_addressing, fattree4_codec):
        """Addresses rooted at different cores encode no valid path."""
        src, dst = "h_0_0_0", "h_1_0_0"
        src_chains = fattree4_addressing.addresses_of(src)
        dst_chains = fattree4_addressing.addresses_of(dst)
        (c1, a1, t1), src_addr = next(iter(src_chains.items()))
        # Pick a destination chain under a DIFFERENT core.
        (c2, a2, t2), dst_addr = next(
            (chain, addr) for chain, addr in dst_chains.items() if chain[0] != c1
        )
        with pytest.raises(RoutingError):
            fattree4_codec.decode(src_addr, dst_addr)

    def test_same_host_rejected(self, fattree4, fattree4_addressing, fattree4_codec):
        addrs = list(fattree4_addressing.addresses_of("h_0_0_0").values())
        with pytest.raises(RoutingError):
            fattree4_codec.decode(addrs[0], addrs[1])


class TestClosAndThreeTier:
    @pytest.mark.parametrize("kind", ["clos", "threetier"])
    def test_round_trip_every_path(self, kind, clos44, threetier_small):
        topo = clos44 if kind == "clos" else threetier_small
        codec = PathCodec(HierarchicalAddressing(topo))
        hosts = sorted(topo.hosts())
        src = hosts[0]
        dst = next(h for h in hosts if topo.pod_of(h) != topo.pod_of(src))
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        pairs = set()
        for path in paths:
            src_addr, dst_addr = codec.encode(src, dst, path)
            assert codec.decode(src_addr, dst_addr) == path
            pairs.add((src_addr, dst_addr))
        # Distinct paths need distinct address pairs for DARD to steer.
        assert len(pairs) == len(paths)
