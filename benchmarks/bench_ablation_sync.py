"""Ablation: randomized vs synchronized scheduling intervals (paper §4.2).

The paper attributes DARD's low path oscillation to the random [1 s, 5 s]
added to every host's 5 s scheduling interval. Removing it makes all hosts
react simultaneously to the same stale path states, so flows herd between
paths: more switches for no benefit.
"""

from repro.experiments.figures import ablation_synchronization
from conftest import run_once


def test_ablation_sync(benchmark, save_output):
    output = run_once(benchmark, ablation_synchronization, duration_s=120.0)
    save_output(output)
    rows = {row["mode"]: row for row in output.rows}
    # Synchronized hosts shift at least as often (usually more).
    assert rows["synchronized"]["shifts_total"] >= rows["randomized"]["shifts_total"]
    # And randomization does not cost transfer time.
    assert rows["randomized"]["mean_fct_s"] <= rows["synchronized"]["mean_fct_s"] * 1.10
