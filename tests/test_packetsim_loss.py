"""Packet simulator under heavy loss: shallow queues, RTO recovery, and
the deadline guard."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.packetsim import PacketSimulation, TcpParams
from repro.topology import FatTree


@pytest.fixture
def topo():
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


class TestLossRecovery:
    def test_completes_despite_shallow_queues(self, topo):
        """A 4-packet queue forces steady tail drops; the transfer must
        still complete, at reduced goodput, with retransmissions counted."""
        sim = PacketSimulation(topo, queue_packets=4)
        sim.add_flow("h_0_0_0", "h_1_0_0", 1 * MB)
        result = sim.run()[0]
        assert result.retransmissions > 0 or sim.total_drops == 0
        assert result.goodput_bps > 10 * MBPS  # degraded but alive

    def test_two_flows_tiny_buffers_both_finish(self, topo):
        sim = PacketSimulation(topo, queue_packets=4)
        sim.add_flow("h_0_0_0", "h_1_0_0", 1 * MB, path_index=0)
        sim.add_flow("h_0_0_1", "h_1_0_1", 1 * MB, path_index=0)
        results = sim.run()
        assert len(results) == 2
        assert all(r.fct_s > 0 for r in results)
        assert sim.total_drops > 0  # the shared path really was contended

    def test_custom_tcp_params(self, topo):
        params = TcpParams(mss_bytes=9000, initial_cwnd=4.0)
        sim = PacketSimulation(topo, params=params)
        sim.add_flow("h_0_0_0", "h_1_0_0", 1 * MB)
        result = sim.run()[0]
        assert result.segments == pytest.approx(1 * MB / 9000, abs=1)

    def test_deadline_guard(self, topo):
        """A transfer that cannot finish within the deadline raises."""
        sim = PacketSimulation(topo)
        sim.add_flow("h_0_0_0", "h_1_0_0", 100 * MB)  # needs ~8 s
        with pytest.raises(ConfigurationError):
            sim.run(deadline_s=0.5)

    def test_flow_path_validation(self, topo):
        sim = PacketSimulation(topo)
        with pytest.raises(ConfigurationError):
            sim.add_flow(
                "h_0_0_0", "h_1_0_0", 1 * MB,
                paths=[("h_0_0_0", "tor_0_0", "h_0_0_1")], weights=[1.0, 2.0],
            )
