"""Figure 4: DARD's file-transfer improvement over ECMP vs flow rate.

Paper shape: stride improves at every rate; random/staggered improve less
(locality keeps bottlenecks at host links, where path switching cannot
help).
"""

from repro.experiments.figures import fig4_improvement
from conftest import run_once


def test_fig4_improvement(benchmark, save_output):
    output = run_once(
        benchmark, fig4_improvement, rates=(0.02, 0.06, 0.10), duration_s=60.0
    )
    save_output(output)
    by_pattern = {}
    for row in output.rows:
        by_pattern.setdefault(row["pattern"], []).append((row["rate_per_host"], row["improvement"]))
    # Stride: DARD clearly wins once there is contention to manage; at the
    # lightest load the paper's curve also starts near zero.
    stride = sorted(by_pattern["stride"])
    assert all(v > 0.05 for _, v in stride[1:])
    # Stride's peak improvement is substantial (paper: 10-20%).
    assert max(v for _, v in stride) > 0.08
    # DARD never makes things catastrophically worse on any pattern.
    for values in by_pattern.values():
        assert min(v for _, v in values) > -0.10
