"""Tests for the analysis tooling: topology reports, sweeps, export,
and rate/utilization sampling."""

import csv
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GBPS, MB, MBPS
from repro.analysis import (
    LinkUtilizationSampler,
    RateSampler,
    analyze_topology,
    records_to_csv,
    results_to_json,
    rows_to_csv,
    sweep,
)
from repro.analysis.sweep import sweep_rows
from repro.experiments import ScenarioConfig, run_scenario
from repro.simulator import FlowComponent, Network
from repro.topology import ClosNetwork, FatTree, ThreeTier


class TestTopologyReport:
    def test_fattree_full_bisection(self, fattree4):
        report = analyze_topology(fattree4)
        assert report.full_bisection
        assert report.access_oversubscription == pytest.approx(1.0)
        assert report.aggregation_oversubscription == pytest.approx(1.0)
        # 16 hosts at 100 Mbps -> bisection 0.8 Gbps.
        assert report.bisection_bandwidth_bps == pytest.approx(8 * 100 * MBPS)
        assert report.min_paths_inter_pod == report.max_paths_inter_pod == 4

    def test_threetier_oversubscribed(self, threetier_small):
        report = analyze_topology(threetier_small)
        assert not report.full_bisection
        assert report.access_oversubscription == pytest.approx(2.5)
        assert report.aggregation_oversubscription == pytest.approx(1.5)

    def test_clos_diversity(self, clos44):
        report = analyze_topology(clos44)
        assert report.min_paths_inter_pod == 8  # 2 * D_A

    def test_counts(self, fattree4):
        report = analyze_topology(fattree4)
        assert report.num_hosts == 16
        assert report.num_switches == 20
        assert "bisection" in report.render()


class TestSweep:
    BASE = ScenarioConfig(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="ecmp",
        arrival_rate_per_host=0.05,
        duration_s=20.0,
        flow_size_bytes=32 * MB,
        seed=3,
    )

    def test_grid_cartesian_product(self):
        results = sweep(self.BASE, {"scheduler": ["ecmp", "vlb"], "seed": [1, 2]})
        assert len(results) == 4
        combos = {(o["scheduler"], o["seed"]) for o, _ in results}
        assert combos == {("ecmp", 1), ("ecmp", 2), ("vlb", 1), ("vlb", 2)}

    def test_dotted_override(self):
        results = sweep(self.BASE, {"topology_params.p": [4]})
        assert results[0][1].records  # ran fine with override applied

    def test_empty_grid_runs_base(self):
        results = sweep(self.BASE, {})
        assert len(results) == 1 and results[0][0] == {}

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(self.BASE, {"bogus_field": [1]})

    def test_too_deep_override_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(self.BASE, {"topology_params.a.b": [1]})

    def test_sweep_rows_flatten(self):
        rows = sweep_rows(self.BASE, {"seed": [1, 2]})
        assert len(rows) == 2
        assert all("mean_fct_s" in row and "flows" in row for row in rows)


class TestExport:
    def _result(self):
        return run_scenario(TestSweep.BASE)

    def test_records_to_csv(self, tmp_path):
        result = self._result()
        path = tmp_path / "records.csv"
        n = records_to_csv(result.records, path)
        assert n == len(result.records)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n
        assert {"flow_id", "fct", "retx_rate"} <= set(rows[0])

    def test_rows_to_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        n = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], path)
        assert n == 2
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["a"] == "1"
        assert set(rows[0]) == {"a", "b", "c"}

    def test_rows_to_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert rows_to_csv([], path) == 0

    def test_results_to_json_handles_nan(self, tmp_path):
        path = tmp_path / "out.json"
        results_to_json({"x": float("nan"), "y": [float("inf"), 1.0]}, path)
        data = json.loads(path.read_text())
        assert data == {"x": None, "y": [None, 1.0]}

    def test_results_to_json_dataclass(self, tmp_path):
        from repro.experiments.figures import ExperimentOutput

        output = ExperimentOutput("x", "title", rows=[{"a": 1}])
        path = tmp_path / "exp.json"
        results_to_json(output, path)
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "x"
        assert data["rows"] == [{"a": 1}]


class TestSamplers:
    def _net(self):
        return Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))

    def _start(self, net, src, dst, size=50 * MB, index=0):
        topo = net.topology
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
        return net.start_flow(
            src, dst, size, [FlowComponent(topo.host_path(src, dst, path))]
        )

    def test_rate_sampler_records_series(self):
        net = self._net()
        sampler = RateSampler(net, interval_s=0.5)
        flow = self._start(net, "h_0_0_0", "h_1_0_0")
        net.engine.run_until(2.0)
        series = sampler.series_for(flow.flow_id)
        assert len(series) == 4
        assert all(rate == pytest.approx(100 * MBPS) for _, rate in series)

    def test_aggregate_throughput(self):
        net = self._net()
        sampler = RateSampler(net, interval_s=1.0)
        self._start(net, "h_0_0_0", "h_1_0_0")
        self._start(net, "h_0_0_1", "h_2_0_0", index=2)
        net.engine.run_until(2.0)
        totals = sampler.aggregate_throughput()
        assert totals and totals[0][1] == pytest.approx(200 * MBPS)

    def test_utilization_sampler(self):
        net = self._net()
        sampler = LinkUtilizationSampler(
            net, [("h_0_0_0", "tor_0_0"), ("core_0_0", "agg_0_0")], interval_s=1.0
        )
        self._start(net, "h_0_0_0", "h_1_0_0")
        net.engine.run_until(3.0)
        assert sampler.peak_utilization(("h_0_0_0", "tor_0_0")) == pytest.approx(1.0)

    def test_validation(self):
        net = self._net()
        with pytest.raises(ConfigurationError):
            RateSampler(net, interval_s=0.0)
        with pytest.raises(ConfigurationError):
            LinkUtilizationSampler(net, [("a", "b")])
