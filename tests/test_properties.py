"""Property-based tests (hypothesis) for the core data structures and
invariants: prefix subdivision, the addressing/codec/fabric agreement,
max-min allocation laws, and congestion-game convergence (Theorem 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addressing import (
    EncapsulationModule,
    HierarchicalAddressing,
    IdMapper,
    Packet,
    PathCodec,
)
from repro.addressing.prefix import Prefix
from repro.common.errors import AddressingError, RoutingError
from repro.gametheory import CongestionGame, GameFlow, run_best_response_dynamics
from repro.gametheory.theorems import check_theorem1_bound
from repro.simulator.maxmin import (
    link_utilizations,
    maxmin_allocate,
    maxmin_allocate_reference,
)
from repro.switches import SwitchFabric
from repro.topology import FatTree


# ---------------------------------------------------------------------------
# Prefix algebra
# ---------------------------------------------------------------------------

@st.composite
def prefix_and_children(draw):
    base_len = draw(st.integers(min_value=0, max_value=20))
    value = draw(st.integers(min_value=0, max_value=(1 << base_len) - 1 if base_len else 0))
    base = Prefix(value << (32 - base_len) if base_len else 0, base_len)
    child_bits = draw(st.integers(min_value=1, max_value=min(8, 32 - base_len)))
    return base, child_bits


class TestPrefixProperties:
    @given(prefix_and_children())
    @settings(max_examples=200)
    def test_subdivision_children_partition_parent(self, case):
        base, child_bits = case
        children = [base.subdivide(i, child_bits) for i in range(1 << child_bits)]
        # Children are pairwise disjoint and all inside the parent.
        for i, a in enumerate(children):
            assert base.contains_prefix(a)
            for b in children[i + 1:]:
                assert not a.overlaps(b)
        # Spans sum exactly to the parent's span.
        parent_span = 1 << (32 - base.length)
        child_span = 1 << (32 - base.length - child_bits)
        assert child_span * len(children) == parent_span

    @given(prefix_and_children(), st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200)
    def test_address_in_exactly_one_child(self, case, addr):
        base, child_bits = case
        if not base.contains_address(addr):
            return
        children = [base.subdivide(i, child_bits) for i in range(1 << child_bits)]
        assert sum(child.contains_address(addr) for child in children) == 1


# ---------------------------------------------------------------------------
# Addressing / codec / fabric agreement on random host pairs and paths
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def stack():
    topo = FatTree(p=4)
    addressing = HierarchicalAddressing(topo)
    return topo, addressing, PathCodec(addressing), SwitchFabric(addressing)


class TestCodecFabricAgreement:
    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_encode_decode_forward_agree(self, stack, data):
        topo, addressing, codec, fabric = stack
        hosts = sorted(topo.hosts())
        src = data.draw(st.sampled_from(hosts))
        dst = data.draw(st.sampled_from([h for h in hosts if h != src]))
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        path = data.draw(st.sampled_from(paths))
        src_addr, dst_addr = codec.encode(src, dst, path)
        # The codec's logical decode and the fabric's hop-by-hop forwarding
        # must agree exactly.
        assert codec.decode(src_addr, dst_addr) == path
        assert fabric.forward_trace(src, src_addr, dst_addr) == (src,) + path + (dst,)

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_owner_round_trip(self, stack, data):
        topo, addressing, codec, fabric = stack
        host = data.draw(st.sampled_from(sorted(topo.hosts())))
        chain = data.draw(st.sampled_from(sorted(addressing.addresses_of(host))))
        addr = addressing.address_of(host, chain)
        assert addressing.owner_of(addr) == (host, chain)


# ---------------------------------------------------------------------------
# Encapsulation roundtrip under adversarial addresses
# ---------------------------------------------------------------------------

class TestEncapsulationProperties:
    @given(data=st.data(), payload=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_wrap_forward_unwrap_roundtrip(self, stack, data, payload):
        """Any (src, dst, path, payload): encapsulate -> fabric-forward ->
        decapsulate returns the exact inner packet."""
        topo, addressing, codec, fabric = stack
        mapper = IdMapper(topo.hosts())
        hosts = sorted(topo.hosts())
        src = data.draw(st.sampled_from(hosts))
        dst = data.draw(st.sampled_from([h for h in hosts if h != src]))
        path = data.draw(
            st.sampled_from(topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst)))
        )
        tx = EncapsulationModule(src, codec, mapper)
        rx = EncapsulationModule(dst, codec, mapper)
        tx.set_path(dst, path)
        packet = Packet(
            src_id=mapper.id_of(src), dst_id=mapper.id_of(dst), payload=payload
        )
        wrapped = tx.encapsulate(packet)
        trace = fabric.forward_trace(src, wrapped.outer_src, wrapped.outer_dst)
        assert trace == (src,) + path + (dst,)
        assert rx.decapsulate(wrapped) == packet

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_misdelivery_always_detected(self, stack, data):
        """A wrapped packet handed to any host other than its destination
        must be rejected, never silently unwrapped."""
        topo, addressing, codec, fabric = stack
        mapper = IdMapper(topo.hosts())
        hosts = sorted(topo.hosts())
        src = data.draw(st.sampled_from(hosts))
        dst = data.draw(st.sampled_from([h for h in hosts if h != src]))
        thief = data.draw(st.sampled_from([h for h in hosts if h != dst]))
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[0]
        tx = EncapsulationModule(src, codec, mapper)
        tx.set_path(dst, path)
        wrapped = tx.encapsulate(
            Packet(src_id=mapper.id_of(src), dst_id=mapper.id_of(dst))
        )
        with pytest.raises(RoutingError):
            EncapsulationModule(thief, codec, mapper).decapsulate(wrapped)

    @given(addr=st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_adversarial_addresses_never_misattributed(self, stack, addr):
        """owner_of on an arbitrary 32-bit address either resolves to a
        host that really owns it (round-trips) or raises AddressingError —
        it never fabricates an owner."""
        topo, addressing, codec, fabric = stack
        try:
            host, chain = addressing.owner_of(addr)
        except AddressingError:
            return
        assert addressing.address_of(host, chain) == addr

    @given(data=st.data(), addr=st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=100, deadline=None)
    def test_fabric_never_loops_on_adversarial_headers(self, stack, data, addr):
        """Injecting an arbitrary destination address at any host either
        traces to a real node or raises cleanly — no infinite forwarding."""
        topo, addressing, codec, fabric = stack
        src = data.draw(st.sampled_from(sorted(topo.hosts())))
        src_addr = sorted(addressing.addresses_of(src))[0]
        try:
            trace = fabric.forward_trace(
                src, addressing.address_of(src, src_addr), addr
            )
        except (AddressingError, RoutingError):
            return
        assert len(trace) <= len(topo.nodes) + 1


# ---------------------------------------------------------------------------
# Indexed-vs-reference allocator on degraded networks
# ---------------------------------------------------------------------------

@st.composite
def degraded_network_case(draw):
    """A fluid network plus a degradation schedule: flows to start, links
    to fail, links to restore — the states where the indexed fast path's
    caches are most likely to go stale."""
    pair_count = draw(st.integers(min_value=1, max_value=6))
    fail_count = draw(st.integers(min_value=0, max_value=3))
    restore_count = draw(st.integers(min_value=0, max_value=fail_count))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return pair_count, fail_count, restore_count, seed


class TestAllocatorOnDegradedNetworks:
    @given(degraded_network_case())
    @settings(max_examples=25, deadline=None)
    def test_live_rates_match_reference_after_failures(self, case):
        from repro.common.units import MBPS
        from repro.simulator import FlowComponent
        from repro.simulator.network import Network
        from repro.validation import check_network_against_reference

        pair_count, fail_count, restore_count, seed = case
        rng = np.random.default_rng(seed)
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        topo = net.topology
        hosts = sorted(topo.hosts())
        for _ in range(pair_count):
            src, dst = (hosts[i] for i in rng.choice(len(hosts), 2, replace=False))
            paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
            path = paths[int(rng.integers(len(paths)))]
            net.start_flow(
                src, dst, 64e6, [FlowComponent(topo.host_path(src, dst, path))]
            )
        cables = sorted(
            {(u, v) for u, v in net.capacities if (v, u) >= (u, v)}
        )
        switch_cables = [
            (u, v) for u, v in cables
            if topo.node(u).kind.is_switch and topo.node(v).kind.is_switch
        ]
        failed = []
        for _ in range(fail_count):
            u, v = switch_cables[int(rng.integers(len(switch_cables)))]
            if net.link_is_up(u, v):
                net.fail_link(u, v)
                failed.append((u, v))
        for u, v in failed[:restore_count]:
            net.restore_link(u, v)
        net.engine.run_until(net.engine.now + 0.001)  # settle the realloc
        net.check_invariants()
        check_network_against_reference(net)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_zero_capacity_links_rejected_identically(self, seed):
        """A zero-capacity link in use must fail the same way through both
        implementations, never diverge silently."""
        from repro.common.errors import SimulationError
        import random as stdlib_random
        from repro.validation.oracles import random_allocation_case

        demands, capacities = random_allocation_case(stdlib_random.Random(seed))
        dead = demands[0][0][0]
        capacities = dict(capacities)
        capacities[dead] = 0.0
        with pytest.raises(SimulationError):
            maxmin_allocate(demands, capacities)
        with pytest.raises(SimulationError):
            maxmin_allocate_reference(demands, capacities)

    def test_empty_demands_agree(self):
        assert maxmin_allocate([], {("a", "b"): 1.0}) == []
        assert maxmin_allocate_reference([], {("a", "b"): 1.0}) == []


# ---------------------------------------------------------------------------
# Max-min allocation laws on random instances
# ---------------------------------------------------------------------------

@st.composite
def random_allocation_instance(draw):
    num_links = draw(st.integers(min_value=1, max_value=8))
    links = [f"l{i}" for i in range(num_links)]
    capacities = {
        link: draw(st.floats(min_value=1.0, max_value=1000.0)) for link in links
    }
    num_flows = draw(st.integers(min_value=1, max_value=12))
    demands = []
    for _ in range(num_flows):
        route_len = draw(st.integers(min_value=1, max_value=num_links))
        route = tuple(draw(st.permutations(links))[:route_len])
        weight = draw(st.floats(min_value=0.1, max_value=5.0))
        demands.append((route, weight))
    return demands, capacities


class TestMaxMinProperties:
    @given(random_allocation_instance())
    @settings(max_examples=200, deadline=None)
    def test_feasible_positive_and_bottlenecked(self, instance):
        demands, capacities = instance
        rates = maxmin_allocate(demands, capacities)
        utils = link_utilizations(demands, rates, capacities)
        # Feasibility: no link over capacity.
        assert all(u <= 1.0 + 1e-6 for u in utils.values())
        # Positivity: everyone gets something.
        assert all(r > 0 for r in rates)
        # Max-min: every flow is bottlenecked on some saturated link.
        for (route, _), rate in zip(demands, rates):
            assert any(utils[link] >= 1.0 - 1e-6 for link in route)

    @given(random_allocation_instance())
    @settings(max_examples=100, deadline=None)
    def test_theorem1_bound_on_random_instances(self, instance):
        """Theorem 1 (Appendix A) checked on arbitrary unweighted networks:
        min flow rate >= min BoNF under max-min fairness."""
        demands, capacities = instance
        unweighted = [(route, 1.0) for route, _ in demands]
        assert check_theorem1_bound(unweighted, capacities).holds

    @given(random_allocation_instance())
    @settings(max_examples=50, deadline=None)
    def test_allocation_deterministic(self, instance):
        demands, capacities = instance
        assert maxmin_allocate(demands, capacities) == maxmin_allocate(
            demands, capacities
        )


# ---------------------------------------------------------------------------
# Congestion game convergence (Theorem 2) on random games
# ---------------------------------------------------------------------------

@st.composite
def random_game(draw):
    num_links = draw(st.integers(min_value=2, max_value=6))
    links = [f"l{i}" for i in range(num_links)]
    capacities = {link: float(draw(st.integers(min_value=1, max_value=20))) for link in links}
    num_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for fid in range(num_flows):
        num_routes = draw(st.integers(min_value=1, max_value=4))
        routes = []
        for _ in range(num_routes):
            length = draw(st.integers(min_value=1, max_value=min(3, num_links)))
            routes.append(tuple(draw(st.permutations(links))[:length]))
        flows.append(GameFlow(fid, tuple(routes)))
    delta = draw(st.floats(min_value=0.05, max_value=2.0))
    return CongestionGame(capacities, flows, delta)


class TestGameProperties:
    @given(random_game())
    @settings(max_examples=100, deadline=None)
    def test_dynamics_converge_to_nash(self, game):
        """Theorem 2: asynchronous selfish moves terminate at a Nash
        equilibrium in finitely many steps, on arbitrary games."""
        result = run_best_response_dynamics(game, max_steps=5000)
        assert result.converged
        assert game.is_nash(result.final)

    @given(random_game())
    @settings(max_examples=100, deadline=None)
    def test_every_move_improves_the_mover(self, game):
        result = run_best_response_dynamics(game, max_steps=5000)
        for step in result.steps:
            assert step.bonf_after - step.bonf_before > game.delta_bps - 1e-9

    @given(random_game(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_convergence_independent_of_move_order(self, game, seed):
        rng = np.random.default_rng(seed)
        result = run_best_response_dynamics(game, rng=rng, max_steps=5000)
        assert result.converged
        assert game.is_nash(result.final)
