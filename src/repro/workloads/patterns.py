"""Destination-selection patterns."""

from __future__ import annotations

import abc
from typing import Dict, List

import numpy as np

from repro.common.errors import ConfigurationError
from repro.topology.multirooted import MultiRootedTopology


class TrafficPattern(abc.ABC):
    """Picks a destination host for each new flow from a given source."""

    name: str = "base"

    def __init__(self, topology: MultiRootedTopology) -> None:
        self.topology = topology
        self.hosts: List[str] = sorted(topology.hosts())
        if len(self.hosts) < 2:
            raise ConfigurationError("pattern needs at least two hosts")

    @abc.abstractmethod
    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        """A destination for ``src``; never ``src`` itself."""


class RandomPattern(TrafficPattern):
    """Uniform over every other host in the topology."""

    name = "random"

    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        while True:
            dst = self.hosts[int(rng.integers(len(self.hosts)))]
            if dst != src:
                return dst


class StaggeredPattern(TrafficPattern):
    """Same ToR w.p. ``tor_p``, same pod w.p. ``pod_p``, else another pod.

    When a bucket is empty for a given source (e.g. its rack has no other
    host), the draw falls through to the next wider bucket, preserving the
    pattern's locality bias without ever failing.
    """

    name = "staggered"

    def __init__(
        self,
        topology: MultiRootedTopology,
        tor_p: float = 0.5,
        pod_p: float = 0.3,
    ) -> None:
        super().__init__(topology)
        if tor_p < 0 or pod_p < 0 or tor_p + pod_p > 1:
            raise ConfigurationError(
                f"staggered probabilities invalid: tor_p={tor_p}, pod_p={pod_p}"
            )
        self.tor_p = tor_p
        self.pod_p = pod_p
        self._same_tor: Dict[str, List[str]] = {}
        self._same_pod: Dict[str, List[str]] = {}
        self._other_pod: Dict[str, List[str]] = {}
        for host in self.hosts:
            tor = topology.tor_of(host)
            pod = topology.pod_of(host)
            self._same_tor[host] = [
                h for h in topology.hosts_of_tor(tor) if h != host
            ]
            self._same_pod[host] = [
                h
                for h in self.hosts
                if h != host and topology.pod_of(h) == pod and topology.tor_of(h) != tor
            ]
            self._other_pod[host] = [
                h for h in self.hosts if topology.pod_of(h) != pod
            ]

    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        roll = rng.random()
        if roll < self.tor_p:
            buckets = [self._same_tor[src], self._same_pod[src], self._other_pod[src]]
        elif roll < self.tor_p + self.pod_p:
            buckets = [self._same_pod[src], self._other_pod[src], self._same_tor[src]]
        else:
            buckets = [self._other_pod[src], self._same_pod[src], self._same_tor[src]]
        for bucket in buckets:
            if bucket:
                return bucket[int(rng.integers(len(bucket)))]
        raise ConfigurationError(f"no destination available for {src!r}")


class StridePattern(TrafficPattern):
    """Host ``x`` sends to host ``(x + step) mod N`` (paper §4.1).

    ``step=None`` auto-picks the smallest step that puts every
    source-destination pair in different pods — the paper chooses "a proper
    step to make sure the source and destination end hosts are in different
    pods".
    """

    name = "stride"

    def __init__(self, topology: MultiRootedTopology, step: int = None) -> None:
        super().__init__(topology)
        n = len(self.hosts)
        if step is None:
            step = self._auto_step()
        if not 0 < step < n:
            raise ConfigurationError(f"stride step {step} out of range (0, {n})")
        self.step = step
        self._dst_of = {
            host: self.hosts[(i + step) % n] for i, host in enumerate(self.hosts)
        }

    def _auto_step(self) -> int:
        topo = self.topology
        n = len(self.hosts)
        for step in range(1, n):
            if all(
                topo.pod_of(self.hosts[i]) != topo.pod_of(self.hosts[(i + step) % n])
                for i in range(n)
            ):
                return step
        raise ConfigurationError("no stride step puts all pairs in different pods")

    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        return self._dst_of[src]


def make_pattern(name: str, topology: MultiRootedTopology, **kwargs) -> TrafficPattern:
    """Construct a pattern by name.

    ``random`` / ``staggered`` / ``stride`` / ``incast`` take their
    constructor kwargs directly. ``composite`` takes ``mix``, a list of
    ``[name, weight]`` (or ``[name, weight, kwargs]``) entries describing
    the mixture, e.g. ``mix=[["staggered", 0.7], ["stride", 0.3]]``.
    """
    if name == "composite":
        from repro.workloads.composite import CompositePattern

        mix = kwargs.pop("mix", None)
        if kwargs or not mix:
            raise ConfigurationError(
                "composite pattern takes exactly one parameter, 'mix'"
            )
        patterns = []
        weights = []
        for entry in mix:
            if len(entry) == 2:
                sub_name, weight = entry
                sub_kwargs = {}
            elif len(entry) == 3:
                sub_name, weight, sub_kwargs = entry
            else:
                raise ConfigurationError(
                    f"mix entry must be [name, weight] or [name, weight, kwargs], got {entry!r}"
                )
            patterns.append(make_pattern(sub_name, topology, **sub_kwargs))
            weights.append(float(weight))
        return CompositePattern(patterns, weights)
    if name == "incast":
        from repro.workloads.scenarios import IncastPattern

        return IncastPattern(topology, **kwargs)
    patterns = {
        "random": RandomPattern,
        "staggered": StaggeredPattern,
        "stride": StridePattern,
    }
    if name not in patterns:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; expected one of "
            f"{sorted(patterns) + ['composite', 'incast']}"
        )
    return patterns[name](topology, **kwargs)
