#!/usr/bin/env python
"""Empirical study of DARD's game-theoretic guarantees (paper Appendix B).

Generates random congestion games over fat-tree path sets and plays
asynchronous best-response dynamics, confirming on every instance that

* the dynamics converge in finitely many steps (Theorem 2),
* every selfish move strictly improves the mover's bottleneck BoNF by
  more than δ, and
* the reached state is a δ-Nash equilibrium;

then brute-forces the global optimum on small instances to measure the
price of anarchy — "its gap to the optimal solution is likely to be small
in practice" (paper §1).

Run:  python examples/convergence_analysis.py
"""

import numpy as np

from repro.common.units import GBPS, MBPS
from repro.gametheory import CongestionGame, GameFlow, run_best_response_dynamics
from repro.topology import FatTree


def random_fattree_game(rng, num_flows, delta_bps=10 * MBPS):
    """A congestion game whose route sets are fat-tree equal-cost paths."""
    topo = FatTree(p=4, link_bandwidth_bps=GBPS)
    capacities = {}
    for u, v in topo.directed_links():
        if topo.node(u).kind.is_switch and topo.node(v).kind.is_switch:
            capacities[(u, v)] = GBPS
    tors = sorted(topo.tors())
    flows = []
    for fid in range(num_flows):
        src, dst = rng.choice(tors, size=2, replace=False)
        routes = tuple(
            tuple(zip(p, p[1:])) for p in topo.equal_cost_paths(src, dst)
        )
        flows.append(GameFlow(fid, routes))
    return CongestionGame(capacities, flows, delta_bps)


def main() -> None:
    rng = np.random.default_rng(0)
    trials = 30
    steps_taken = []
    print(f"playing best-response dynamics on {trials} random games "
          "(p=4 fat-tree route sets, 6-14 flows each)...")
    for trial in range(trials):
        game = random_fattree_game(rng, num_flows=int(rng.integers(6, 15)))
        result = run_best_response_dynamics(game, rng=rng)
        assert result.converged
        assert game.is_nash(result.final)
        for step in result.steps:
            assert step.bonf_after - step.bonf_before > game.delta_bps
        steps_taken.append(result.num_steps)
    print(f"  all {trials} games converged to Nash equilibria")
    print(f"  steps to converge: mean {np.mean(steps_taken):.1f}, "
          f"max {max(steps_taken)}")

    print("\nprice of anarchy on small games (brute-forced optimum):")
    gaps = []
    for trial in range(10):
        game = random_fattree_game(rng, num_flows=4)
        result = run_best_response_dynamics(game, rng=rng)
        reached = game.min_bonf(result.final)
        optimal = game.min_bonf(game.global_optimum())
        gaps.append(reached / optimal)
    print(f"  min-BoNF(Nash) / min-BoNF(optimum) over 10 games: "
          f"mean {np.mean(gaps):.3f}, worst {min(gaps):.3f}")
    print("  (1.000 means the selfish equilibrium matches the optimum)")


if __name__ == "__main__":
    main()
