"""Intra-scenario parallel execution backends with a deterministic merge.

DARD's premise is *distributed* adaptive routing: per-pair decisions with
no global coordination. The simulator already proved the numerical half of
that claim — max-min allocation decomposes bit-exactly across flow-link
components (DESIGN.md "Component decomposition"), and the PR 8 ownership
analysis (``dard lint --parallel-safety-report``) certified the component
closure as write-pure. This module spends those two proofs on wall-clock
speed: a pluggable backend fans the per-component allocation work and the
batched control-plane rounds out across workers.

Three backends, selected by ``Network(parallel_backend=...)``:

* ``serial`` — the reference. :meth:`SerialBackend.fill` is a direct call
  to :func:`~repro.simulator.maxmin.maxmin_allocate_indexed`; nothing else
  changes, so every existing golden trace is untouched by construction.
* ``threads`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
  The per-bucket work is numpy kernels that release the GIL, so threads
  scale on multi-core hosts with zero serialization cost.
* ``processes`` — a forked process pool. Bucket inputs ship pickled
  (compact CSR slices), but results come back through one
  :mod:`multiprocessing.shared_memory` segment per round: each worker
  scatters its rates into a disjoint slice of the shared output column —
  the write regions are exactly the demand partition derived from the
  component structure — so the parent merges by viewing the segment, with
  zero result copy-back through the pickle channel.

**The deterministic merge contract.** Results are applied in bucket order,
and buckets are formed by a pure function of the round's demand structure
(:func:`partition_demands`: component groups, largest-nnz first with root
id as the tie-break, greedily balanced into the least-loaded bucket).
Worker completion order never matters: futures are gathered in submission
order, and each bucket writes a disjoint slice of the demand axis, so the
merged rate vector is positionally identical to the serial fill. Within a bucket, demands keep their global relative order, so each
link's subtraction-accumulation order inside ``maxmin_allocate_indexed``
and ``scatter_link_loads`` is byte-for-byte the serial order (a link's
demands all live in one component, hence one bucket). The dual-run oracle
(:func:`~repro.validation.oracles.check_parallel_equivalence`) and the
fuzzer enforce the contract end to end: records, shift journals, and
golden traces are bit-identical to serial for every backend and worker
count. Only ``filling_iterations`` differs (per-bucket fills count
symmetric cross-bucket ties as separate rounds — the same telemetry-only
exemption the incremental oracle already makes).

Pools are process-global, keyed by (kind, worker count), created lazily
and torn down at interpreter exit: fuzzing churns through thousands of
short-lived ``Network`` objects and must not leak a pool per network.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.simulator.maxmin import maxmin_allocate_indexed

__all__ = [
    "PARALLEL_BACKENDS",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "make_backend",
    "partition_demands",
    "resolve_workers",
]

#: the valid ``Network(parallel_backend=...)`` spellings.
PARALLEL_BACKENDS = ("serial", "threads", "processes")

#: don't fan a fill out unless the round carries at least this many
#: link-slot entries — below it, task dispatch costs more than the fill.
#: Structural (data-dependent, never timing-dependent), so the same rounds
#: fan out on every machine and ``par_*`` telemetry is deterministic.
_MIN_FANOUT_NNZ = 256

#: minimum dirty registry rows before a control-plane round is chunked.
MIN_CP_FANOUT_ROWS = 512


def resolve_workers(requested: Optional[int]) -> int:
    """Worker count: the request, else the CPUs this process may use.

    Prefers the scheduling affinity mask (cgroup/taskset aware) over the
    raw core count: a container pinned to 2 of 64 cores should get 2
    workers, not 64. ``process_cpu_count`` (3.13+) is the same signal;
    ``os.cpu_count`` is the last resort.
    """
    if requested is not None:
        workers = int(requested)
        if workers < 1:
            raise SimulationError(f"parallel_workers must be >= 1, got {requested}")
        return workers
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:  # pragma: no cover - 3.13+
        return max(1, process_cpu_count() or 1)
    return max(1, os.cpu_count() or 1)


def partition_demands(
    roots: Sequence[int], indptr: np.ndarray, max_buckets: int
) -> List[np.ndarray]:
    """Deterministically partition demand positions into balanced buckets.

    ``roots[j]`` is the component root of demand ``j``; demands of one
    component always land in one bucket (the correctness requirement: a
    link's demands must stay together so its accumulation order is the
    serial order). Groups are balanced greedily by nnz, largest first,
    into the least-loaded bucket (lowest index on ties) — a pure function
    of ``(roots, indptr, max_buckets)``, so every machine and every run
    builds the same buckets. Returned buckets are non-empty position
    arrays, each sorted ascending (preserving global demand order), in
    bucket-index order.
    """
    order: Dict[int, List[int]] = {}
    for j, root in enumerate(roots):
        order.setdefault(root, []).append(j)
    sizes = {
        root: sum(int(indptr[j + 1] - indptr[j]) for j in js)
        for root, js in order.items()
    }
    # Largest group first; ties broken by root id so the plan is total.
    groups = sorted(order.items(), key=lambda kv: (-sizes[kv[0]], kv[0]))
    nbuckets = min(max_buckets, len(groups))
    buckets: List[List[int]] = [[] for _ in range(nbuckets)]
    loads = [0] * nbuckets
    for root, js in groups:
        b = loads.index(min(loads))
        buckets[b].extend(js)
        loads[b] += sizes[root]
    return [np.asarray(sorted(b), dtype=np.intp) for b in buckets if b]


def _bucket_csr(
    indices: np.ndarray,
    indptr: np.ndarray,
    weights: np.ndarray,
    positions: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract one bucket's (indices, indptr, weights) sub-CSR.

    ``positions`` is sorted, so the bucket keeps the global demand order
    and each link's member order is unchanged.
    """
    ids = [indices[indptr[j] : indptr[j + 1]] for j in positions.tolist()]
    sub_indptr = np.zeros(len(ids) + 1, dtype=np.intp)
    np.cumsum([chunk.size for chunk in ids], out=sub_indptr[1:])
    sub_indices = np.concatenate(ids) if ids else np.empty(0, dtype=indices.dtype)
    return sub_indices, sub_indptr, weights[positions]


def _fill_bucket_worker(
    indices: np.ndarray,
    indptr: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """One bucket's water-fill: compact to its own links, then allocate.

    The closure root the parallel-safety certificate covers: this function
    (and everything it calls) must be write-pure — it reads the shared
    capacity column and returns fresh arrays, mutating nothing it did not
    create. ``np.unique`` preserves relative link order, so bottleneck
    selection and heap tie-breaking match the combined serial fill.
    """
    touched = np.unique(indices)
    sub = np.searchsorted(touched, indices)
    rates, iterations = maxmin_allocate_indexed(
        sub, indptr, weights, capacities[touched]
    )
    return rates, iterations


def _fill_bucket_worker_shm(
    shm_name: str,
    out_offset: int,
    indices: np.ndarray,
    indptr: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
) -> int:
    """Process-pool variant: scatter rates into the shared output column.

    The slice ``[out_offset, out_offset + n)`` is this worker's disjoint
    write region — the demand partition *is* the write partition — so no
    result rides the pickle channel back (zero copy-back); only the
    iteration count returns.
    """
    rates, iterations = _fill_bucket_worker(indices, indptr, weights, capacities)
    segment = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray(
            (out_offset + rates.size,), dtype=np.float64, buffer=segment.buf
        )
        out[out_offset : out_offset + rates.size] = rates
    finally:
        segment.close()
    return int(iterations)


# -- pool lifecycle ---------------------------------------------------------

_POOLS: Dict[Tuple[str, int], Executor] = {}


def _pool(kind: str, workers: int) -> Executor:
    """The process-global executor for (kind, workers), created lazily."""
    key = (kind, workers)
    pool = _POOLS.get(key)
    if pool is None:
        if kind == "threads":
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="dard-par"
            )
        else:
            pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[key] = pool
    return pool


def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    while _POOLS:
        _POOLS.popitem()[1].shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


# -- backends ---------------------------------------------------------------


class SerialBackend:
    """The reference executor: combined fills, inline control-plane rounds.

    ``fill`` forwards its arguments to ``maxmin_allocate_indexed``
    unchanged — byte-for-byte the pre-backend behavior — so the serial
    backend is not "parallel with one worker" but literally the historical
    code path, and golden traces cannot drift.
    """

    kind = "serial"

    def __init__(self) -> None:
        self.workers = 1
        self._stats = _zero_stats(self.workers)

    def fill(
        self,
        indices: np.ndarray,
        indptr: np.ndarray,
        weights: np.ndarray,
        capacities: np.ndarray,
        roots: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, int]:
        """Allocate the combined CSR in one call; ``roots`` is ignored."""
        return maxmin_allocate_indexed(indices, indptr, weights, capacities)

    def run_tasks(
        self, fn: Callable[..., Any], payloads: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Apply ``fn`` to each payload inline, in order."""
        return [fn(*payload) for payload in payloads]

    def stats(self) -> Dict[str, float]:
        """Snapshot the ``par_*`` telemetry counters (see ``perf_stats``)."""
        return dict(self._stats)


class _PoolBackend(SerialBackend):
    """Shared fan-out/merge machinery for the threads/processes backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        self.workers = resolve_workers(workers)
        self._stats = _zero_stats(self.workers)

    def _plan(
        self,
        indices: np.ndarray,
        indptr: np.ndarray,
        roots: Optional[Sequence[int]],
    ) -> Optional[List[np.ndarray]]:
        """The round's bucket plan, or None when fanning out can't pay."""
        if roots is None or self.workers < 2 or indices.size < _MIN_FANOUT_NNZ:
            return None
        buckets = partition_demands(roots, indptr, self.workers)
        if len(buckets) < 2:
            return None
        return buckets

    def fill(
        self,
        indices: np.ndarray,
        indptr: np.ndarray,
        weights: np.ndarray,
        capacities: np.ndarray,
        roots: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, int]:
        buckets = self._plan(indices, indptr, roots)
        if buckets is None:
            return maxmin_allocate_indexed(indices, indptr, weights, capacities)
        tasks = [_bucket_csr(indices, indptr, weights, js) for js in buckets]
        nnz = [task[0].size for task in tasks]
        # perf_counter feeds par_* telemetry only, never sim state.
        started = perf_counter()  # dardlint: disable=DET002
        rates = np.zeros(indptr.size - 1, dtype=np.float64)
        iterations = self._dispatch(tasks, buckets, capacities, rates)
        stats = self._stats
        stats["par_merge_wait_s"] += perf_counter() - started  # dardlint: disable=DET002
        stats["par_rounds"] += 1
        stats["par_tasks"] += len(buckets)
        stats["par_fanout_max"] = max(stats["par_fanout_max"], len(buckets))
        stats["par_nnz"] += indices.size
        stats["par_imbalance_max"] = max(
            stats["par_imbalance_max"], max(nnz) * len(nnz) / max(1, sum(nnz))
        )
        return rates, iterations

    def _dispatch(
        self,
        tasks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        buckets: List[np.ndarray],
        capacities: np.ndarray,
        rates: np.ndarray,
    ) -> int:
        raise NotImplementedError

    def run_tasks(
        self, fn: Callable[..., Any], payloads: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Fan payloads over the thread pool; gather in submission order.

        Used by the control-plane round (``MonitorRegistry._refresh``):
        tasks close over live network arrays, so they always run on
        threads — under the processes backend too (shipping the arrays to
        another process would cost more than the round; see DESIGN.md).
        """
        if self.workers < 2 or len(payloads) < 2:
            return [fn(*payload) for payload in payloads]
        pool = _pool("threads", self.workers)
        futures = [pool.submit(fn, *payload) for payload in payloads]
        results = [future.result() for future in futures]
        self._stats["par_cp_rounds"] += 1
        self._stats["par_cp_chunks"] += len(payloads)
        return results


class ThreadsBackend(_PoolBackend):
    """GIL-releasing numpy fills on a shared thread pool."""

    kind = "threads"

    def _dispatch(
        self,
        tasks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        buckets: List[np.ndarray],
        capacities: np.ndarray,
        rates: np.ndarray,
    ) -> int:
        pool = _pool("threads", self.workers)
        futures = [
            pool.submit(_fill_bucket_worker, bi, bp, bw, capacities)
            for bi, bp, bw in tasks
        ]
        iterations = 0
        # Submission order == bucket order: the merge is deterministic no
        # matter which worker finishes first.
        for js, future in zip(buckets, futures):
            bucket_rates, bucket_iterations = future.result()
            rates[js] = bucket_rates
            iterations += bucket_iterations
        return iterations


class ProcessesBackend(_PoolBackend):
    """Forked workers writing rates into a shared-memory output column."""

    kind = "processes"

    def _dispatch(
        self,
        tasks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        buckets: List[np.ndarray],
        capacities: np.ndarray,
        rates: np.ndarray,
    ) -> int:
        pool = _pool("processes", self.workers)
        total = int(sum(js.size for js in buckets))
        segment = shared_memory.SharedMemory(create=True, size=max(8, total * 8))
        try:
            out = np.ndarray((total,), dtype=np.float64, buffer=segment.buf)
            out[:] = 0.0
            offsets = np.zeros(len(buckets) + 1, dtype=np.intp)
            np.cumsum([js.size for js in buckets], out=offsets[1:])
            futures = []
            for k, (bi, bp, bw) in enumerate(tasks):
                # Ship the bucket's own capacity rows, not the full column:
                # the worker re-derives the same compaction (np.unique is
                # idempotent over an already-unique ascending id set).
                touched = np.unique(bi)
                sub = np.searchsorted(touched, bi)
                futures.append(
                    pool.submit(
                        _fill_bucket_worker_shm,
                        segment.name,
                        int(offsets[k]),
                        sub,
                        bp,
                        bw,
                        capacities[touched],
                    )
                )
            iterations = 0
            for k, (js, future) in enumerate(zip(buckets, futures)):
                iterations += future.result()
                rates[js] = out[offsets[k] : offsets[k + 1]]
            return iterations
        finally:
            segment.close()
            segment.unlink()


def _zero_stats(workers: int) -> Dict[str, float]:
    return {
        "par_workers": float(workers),
        "par_rounds": 0.0,
        "par_tasks": 0.0,
        "par_fanout_max": 0.0,
        "par_nnz": 0.0,
        "par_imbalance_max": 0.0,
        "par_merge_wait_s": 0.0,
        "par_cp_rounds": 0.0,
        "par_cp_chunks": 0.0,
    }


def make_backend(kind: str, workers: Optional[int] = None) -> SerialBackend:
    """Construct the backend for ``Network(parallel_backend=kind)``."""
    if kind == "serial":
        if workers is not None and int(workers) != 1:
            raise SimulationError(
                f"the serial backend is single-worker; got parallel_workers={workers}"
            )
        return SerialBackend()
    if kind == "threads":
        return ThreadsBackend(workers)
    if kind == "processes":
        return ProcessesBackend(workers)
    raise SimulationError(
        f"parallel_backend must be one of {PARALLEL_BACKENDS}, got {kind!r}"
    )
