"""Tests for scenario config JSON round-tripping and the run-config CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, load_config, save_config
from repro.experiments.configio import config_from_dict, config_to_dict


def sample_config(**overrides):
    base = dict(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        scheduler_params={"delta_bps": 5 * MBPS},
        arrival_rate_per_host=0.05,
        duration_s=30.0,
        flow_size_bytes=64 * MB,
        seed=3,
        link_events=(("fail", 10.0, "agg_0_0", "core_0_0"),),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        config = sample_config()
        path = tmp_path / "scenario.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_dict_round_trip(self):
        config = sample_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "scenario.json"
        save_config(sample_config(), path)
        payload = json.loads(path.read_text())
        assert payload["scheduler"] == "dard"
        assert payload["link_events"] == [["fail", 10.0, "agg_0_0", "core_0_0"]]

    def test_unknown_key_rejected(self):
        payload = config_to_dict(sample_config())
        payload["scheduller"] = "dard"  # the typo this guard exists for
        with pytest.raises(ConfigurationError):
            config_from_dict(payload)

    def test_malformed_event_rejected(self):
        payload = config_to_dict(sample_config())
        payload["link_events"] = [["fail", 10.0, "agg_0_0"]]
        with pytest.raises(ConfigurationError):
            config_from_dict(payload)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_config(path)
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            load_config(path)


class TestRunConfigCli:
    def test_run_config(self, tmp_path, capsys):
        config = sample_config(link_events=(), duration_s=20.0)
        path = tmp_path / "scenario.json"
        save_config(config, path)
        records = tmp_path / "records.csv"
        code = cli_main(["run-config", str(path), "--records-csv", str(records)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler=dard" in out
        assert records.exists()
