"""Seeded randomized equivalence: indexed allocator vs string-keyed oracle.

The integer-indexed fast path (``maxmin_allocate_indexed`` + the network's
CSR reallocation) must produce the same rates as the preserved pre-index
implementation (``maxmin_allocate_reference``) across random topologies,
weights, and failure sets. "Same" means within 1e-9 relative tolerance —
the two paths may pick saturated bottlenecks in a different order when
shares tie exactly, which perturbs nothing beyond floating-point ulps.
"""

import math
import random

import pytest

from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.simulator.maxmin import (
    maxmin_allocate,
    maxmin_allocate_reference,
)
from repro.topology import FatTree


def assert_rates_equal(actual, expected):
    """Elementwise closeness: 1e-9 relative, 1e-6 absolute (rates ~1e8)."""
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert math.isclose(a, e, rel_tol=1e-9, abs_tol=1e-6), (a, e)


def random_linkset_case(rng):
    """A random 'topology': arbitrary directed links + arbitrary demands.

    The allocator only sees link sets, so demands need not be contiguous
    paths — sampling random subsets exercises every incidence shape.
    """
    num_links = rng.randint(2, 40)
    links = [(f"n{i}", f"n{i}'") for i in range(num_links)]
    capacities = {link: rng.uniform(10.0, 1000.0) for link in links}
    demands = []
    for _ in range(rng.randint(1, 60)):
        k = rng.randint(1, min(6, num_links))
        route = tuple(rng.sample(links, k))
        weight = rng.uniform(0.1, 5.0)
        demands.append((route, weight))
    return demands, capacities


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_linksets(self, seed):
        rng = random.Random(1000 + seed)
        demands, capacities = random_linkset_case(rng)
        assert_rates_equal(
            maxmin_allocate(demands, capacities),
            maxmin_allocate_reference(demands, capacities),
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_fattree_paths_with_failures(self, seed):
        """Fat-tree equal-cost paths, random weights, random failure sets."""
        rng = random.Random(2000 + seed)
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        hosts = sorted(topo.hosts())
        all_links = [(l.u, l.v) for l in topo.links()]
        capacities = {}
        for u, v in all_links:
            capacities[(u, v)] = topo.link(u, v).bandwidth_bps
            capacities[(v, u)] = topo.link(u, v).bandwidth_bps
        failed = set()
        for u, v in rng.sample(all_links, rng.randint(0, 3)):
            failed.add((u, v))
            failed.add((v, u))
        demands = []
        while len(demands) < 40:
            src, dst = rng.sample(hosts, 2)
            paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
            path = topo.host_path(src, dst, rng.choice(paths))
            route = tuple(zip(path, path[1:]))
            if any(link in failed for link in route):
                continue  # what the network's reallocator skips
            demands.append((route, rng.uniform(0.5, 3.0)))
        assert_rates_equal(
            maxmin_allocate(demands, capacities),
            maxmin_allocate_reference(demands, capacities),
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_live_network_matches_oracle(self, seed):
        """End to end: drive a network through random starts/reroutes/failures
        and check the rates it settled on against the oracle computed from
        its own current flow state."""
        rng = random.Random(3000 + seed)
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        hosts = sorted(topo.hosts())
        cables = sorted(
            (l.u, l.v)
            for l in topo.links()
            if topo.node(l.u).kind.is_switch and topo.node(l.v).kind.is_switch
        )
        flows = []
        for step in range(30):
            action = rng.random()
            if action < 0.6 or not flows:
                src, dst = rng.sample(hosts, 2)
                paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
                comp = FlowComponent(topo.host_path(src, dst, rng.choice(paths)))
                flows.append(net.start_flow(src, dst, rng.uniform(1, 64) * MB, [comp]))
            elif action < 0.8:
                live = [f for f in flows if f.active]
                if live:
                    flow = rng.choice(live)
                    paths = topo.equal_cost_paths(
                        topo.tor_of(flow.src), topo.tor_of(flow.dst)
                    )
                    comp = FlowComponent(
                        topo.host_path(flow.src, flow.dst, rng.choice(paths))
                    )
                    net.reroute_flow(flow, [comp])
            elif action < 0.9:
                net.fail_link(*rng.choice(cables))
            else:
                for cable in sorted(net.failed_links):
                    net.restore_link(*cable)
                    break
            net.engine.run_until(net.engine.now + rng.uniform(0.05, 2.0))

            # Oracle: string-keyed allocation over the network's live state.
            demands, owners = [], []
            for flow in net.flows.values():
                for idx, component in enumerate(flow.components):
                    links = component.links()
                    if net.failed_links and any(l in net.failed_links for l in links):
                        continue
                    demands.append((links, component.weight))
                    owners.append((flow, idx))
            expected = maxmin_allocate_reference(demands, net.capacities)
            actual = [flow.component_rates[idx] for flow, idx in owners]
            assert_rates_equal(actual, expected)
            net.check_invariants()
