"""The parallel-safety rule family: RACE001-003 and OWN001.

These rules are the interprocedural face of the ownership registry
(:mod:`repro.lint.ownership`): the heavy lifting — call graph, taint
aliases, escape propagation, component-closure traversal — happens once
per lint run in :class:`repro.lint.callgraph.OwnershipAnalysis`, cached
on the driver's :class:`~repro.lint.engine.ProgramContext`; each rule
here just surfaces its slice of the precomputed findings for the module
being checked.

Together they make component-parallel control-plane rounds a checked
contract: if ``dard lint`` is clean, every function reachable from
``COMPONENT_SCOPED`` roots writes only state whose ``writers`` tuple
names it, consumes cross-component dirty state only at the declared
merge points, and never mutates the global registry/engine/partition
structures mid-round. ``--parallel-safety-report`` serializes the same
analysis as a purity certificate, and the runtime sanitizer
(:mod:`repro.validation.sanitizer`) enforces the identical table under
fuzz, so a suppression here must be backed by a sanitizer-clean run.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.callgraph import OwnershipAnalysis
from repro.lint.engine import Finding, ModuleContext, Rule, register

__all__ = [
    "ComponentScopedWrite",
    "DirtyCrossComponentRead",
    "SharedStructureMutation",
    "SharedStateCreatedOutsideOwner",
]


def _analysis(ctx: ModuleContext) -> OwnershipAnalysis:
    """The per-run ownership analysis, built once and cached.

    Falls back to a single-module analysis when a rule is exercised
    directly against a lone context (unit tests) — the same code path,
    just a one-file program.
    """
    program = ctx.program
    if program is None:
        return OwnershipAnalysis([ctx])
    cached = program.cache.get("ownership")
    if not isinstance(cached, OwnershipAnalysis):
        cached = OwnershipAnalysis(program.contexts)
        program.cache["ownership"] = cached
    return cached


class _AnalysisRule(Rule):
    """Shared ``check``: emit this rule's precomputed per-file findings."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for finding in _analysis(ctx).findings_for(str(ctx.path), self.code):
            yield finding


@register
class ComponentScopedWrite(_AnalysisRule):
    """Write to another owner's state from component-scoped code.

    A function reachable from a ``COMPONENT_SCOPED`` root (without
    crossing a declared boundary) mutates a registered shared attribute
    whose ``writers`` tuple does not name it. Under component-parallel
    rounds that write races with the attribute's real owner; either add
    the function to the ownership table (with review) or route the
    mutation through a sanctioned writer.
    """

    code = "RACE001"
    name = "component-scoped-cross-write"
    description = "write to another owner's shared state inside a component round"


@register
class DirtyCrossComponentRead(_AnalysisRule):
    """Read of dirty cross-component state outside the merge points.

    ``category="dirty"`` state (invalidation buffers like
    ``_retired_link_ids``, ``_dirty``, ``_pending_links``) is only
    coherent when consumed at the declared merge points
    (``consume_dirty``/``scatter_link_loads``) or inside its owner
    module; any other read observes a torn view once rounds run
    concurrently.
    """

    code = "RACE002"
    name = "dirty-read-outside-merge"
    description = "dirty cross-component state read outside declared merge points"


@register
class SharedStructureMutation(_AnalysisRule):
    """Mutation of globally shared structures inside a component round.

    Calls to the registered shared-structure mutators (partition
    ``rebuild``, event-engine scheduling, monitor-registry CSR
    maintenance) from code reachable from a per-component round mutate
    state every component shares; hoist them to the serial phase around
    the round (as ``_reallocate`` does for the epoch rebuild).
    """

    code = "RACE003"
    name = "shared-structure-mutation-in-round"
    description = "registry/engine/partition structure mutated inside a component round"


@register
class SharedStateCreatedOutsideOwner(_AnalysisRule):
    """Registered shared-state attribute created outside its owner module.

    Rebinding a registered attribute to a freshly created container or
    array outside the declared ``owner_modules`` (and outside the
    attribute's sanctioned writers) bypasses both the ownership table
    and the runtime sanitizer's write barriers — the new object carries
    no guard. Create shared state in its owner, or register the new
    owner in ``repro.lint.ownership``.
    """

    code = "OWN001"
    name = "shared-state-created-outside-owner"
    description = "shared-state attribute created outside its declared owner module"
