"""Table 6: average file transfer time on Clos networks, all schedulers.

Paper shape: same pattern as Table 4 — DARD improves markedly under
stride, still helps under staggered, and stays close to the centralized
scheduler throughout.
"""

from repro.experiments.figures import tab6_clos_fct
from conftest import run_once


def test_tab6_clos_fct(benchmark, save_output):
    output = run_once(benchmark, tab6_clos_fct, duration_s=60.0)
    save_output(output)
    for row in output.rows:
        if row["pattern"] == "stride":
            assert row["dard_s"] < row["ecmp_s"], row
        assert row["dard_s"] <= row["ecmp_s"] * 1.05, row
