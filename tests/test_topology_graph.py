"""Tests for the graph core (nodes, links, base Topology)."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import GBPS
from repro.topology.graph import Link, Node, NodeKind, Topology


def tiny_topology():
    topo = Topology()
    topo.add_node(Node("h0", NodeKind.HOST))
    topo.add_node(Node("t0", NodeKind.TOR))
    topo.add_node(Node("a0", NodeKind.AGG))
    topo.add_link("h0", "t0", GBPS)
    topo.add_link("t0", "a0", GBPS)
    return topo


class TestNodeKind:
    def test_layers_ascend(self):
        assert NodeKind.HOST.layer == 0
        assert NodeKind.TOR.layer == 1
        assert NodeKind.AGG.layer == 2
        assert NodeKind.CORE.layer == 3

    def test_switchness(self):
        assert not NodeKind.HOST.is_switch
        assert NodeKind.TOR.is_switch
        assert NodeKind.CORE.is_switch


class TestTopologyConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("x", NodeKind.HOST))
        with pytest.raises(TopologyError):
            topo.add_node(Node("x", NodeKind.TOR))

    def test_link_requires_existing_nodes(self):
        topo = Topology()
        topo.add_node(Node("x", NodeKind.HOST))
        with pytest.raises(TopologyError):
            topo.add_link("x", "ghost", GBPS)

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node(Node("x", NodeKind.TOR))
        with pytest.raises(TopologyError):
            topo.add_link("x", "x", GBPS)

    def test_duplicate_link_rejected_either_direction(self):
        topo = tiny_topology()
        with pytest.raises(TopologyError):
            topo.add_link("t0", "h0", GBPS)


class TestTopologyQueries:
    def test_neighbors(self):
        topo = tiny_topology()
        assert topo.neighbors("t0") == ["h0", "a0"]

    def test_link_symmetric_lookup(self):
        topo = tiny_topology()
        assert topo.link("h0", "t0") is topo.link("t0", "h0")

    def test_missing_link_raises(self):
        topo = tiny_topology()
        with pytest.raises(TopologyError):
            topo.link("h0", "a0")

    def test_missing_node_raises(self):
        topo = tiny_topology()
        with pytest.raises(TopologyError):
            topo.node("nope")
        with pytest.raises(TopologyError):
            topo.neighbors("nope")

    def test_directed_links_double_cables(self):
        topo = tiny_topology()
        directed = list(topo.directed_links())
        assert len(directed) == 2 * topo.num_links
        assert ("h0", "t0") in directed and ("t0", "h0") in directed

    def test_kind_filters(self):
        topo = tiny_topology()
        assert topo.hosts() == ["h0"]
        assert sorted(topo.switches()) == ["a0", "t0"]

    def test_path_links_validates_adjacency(self):
        topo = tiny_topology()
        assert topo.path_links(("h0", "t0", "a0")) == (("h0", "t0"), ("t0", "a0"))
        with pytest.raises(TopologyError):
            topo.path_links(("h0", "a0"))

    def test_link_defaults(self):
        link = Link("a", "b", GBPS)
        assert link.delay_s == pytest.approx(0.0001)
        assert link.endpoints() == ("a", "b")
