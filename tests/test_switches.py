"""Tests for flow tables, switches, fabric forwarding, and the paper's
Table 2 / Table 3 structure."""

import pytest

from repro.common.errors import RoutingError
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.addressing.prefix import Prefix
from repro.switches import FlowTable, Switch, SwitchFabric
from repro.topology import ThreeTier
from repro.topology.graph import NodeKind


class TestFlowTable:
    def test_longest_prefix_wins(self):
        table = FlowTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        table.add(Prefix.parse("10.4.0.0/14"), 2)
        assert table.lookup(Prefix.parse("10.4.16.0/24").value) == 2
        assert table.lookup(Prefix.parse("10.8.0.0/16").value) == 1

    def test_miss_returns_none(self):
        table = FlowTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        assert table.lookup(Prefix.parse("11.0.0.0/8").value) is None

    def test_duplicate_same_port_idempotent(self):
        table = FlowTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        assert len(table) == 1

    def test_conflicting_ports_rejected(self):
        table = FlowTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        with pytest.raises(RoutingError):
            table.add(Prefix.parse("10.0.0.0/8"), 2)

    def test_entries_sorted_longest_first(self):
        table = FlowTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        table.add(Prefix.parse("10.4.0.0/14"), 2)
        lengths = [e.prefix.length for e in table.entries()]
        assert lengths == sorted(lengths, reverse=True)

    def test_contains(self):
        table = FlowTable()
        pfx = Prefix.parse("10.4.0.0/14")
        table.add(pfx, 3)
        assert pfx in table
        assert Prefix.parse("10.8.0.0/14") not in table

    def test_default_route_zero_length(self):
        table = FlowTable()
        table.add(Prefix.parse("0.0.0.0/0"), 9)
        assert table.lookup(12345) == 9


class TestSwitchStructure:
    def test_ports_one_based_deterministic(self, fattree4_fabric):
        sw = fattree4_fabric.switch("agg_0_0")
        assert sorted(sw.ports) == [1, 2, 3, 4]
        assert set(sw.ports.values()) == set(
            ["core_0_0", "core_0_1", "tor_0_0", "tor_0_1"]
        )

    def test_unknown_switch(self, fattree4_fabric):
        with pytest.raises(RoutingError):
            fattree4_fabric.switch("h_0_0_0")

    def test_agg_table_shape_matches_table2(self, fattree4, fattree4_fabric):
        """Paper Table 2: an aggregation switch has one downhill entry per
        (core, tor) chain through it and one uphill entry per core above."""
        sw = fattree4_fabric.switch("agg_0_0")
        num_cores_above = len(fattree4.up_neighbors("agg_0_0"))
        num_tors_below = len(fattree4.down_neighbors("agg_0_0"))
        assert len(sw.uphill) == num_cores_above
        assert len(sw.downhill) == num_cores_above * num_tors_below

    def test_core_has_no_uphill_table(self, fattree4_fabric):
        """'A core switch only has the downhill table' (§2.3)."""
        for name, sw in fattree4_fabric.switches.items():
            if name.startswith("core"):
                assert len(sw.uphill) == 0
                assert len(sw.downhill) > 0

    def test_tor_downhill_hosts_uphill_chains(self, fattree4, fattree4_fabric):
        sw = fattree4_fabric.switch("tor_0_0")
        hosts = len(fattree4.hosts_of_tor("tor_0_0"))
        chains = len(fattree4.chains_to_tor("tor_0_0"))
        assert len(sw.downhill) == hosts * chains
        assert len(sw.uphill) == chains

    def test_forward_miss_raises(self, fattree4_fabric):
        sw = fattree4_fabric.switch("core_0_0")
        with pytest.raises(RoutingError):
            sw.forward(0, 0)

    def test_merged_table_matches_table3(self, fattree4, fattree4_fabric):
        """Paper Table 3: for fat-trees a single destination-based table is
        equivalent — all entries merge without conflicts."""
        sw = fattree4_fabric.switch("agg_0_0")
        merged = sw.merged_routing_table()
        assert len(merged) == len(sw.downhill) + len(sw.uphill)


class TestFabricForwarding:
    def test_trace_follows_encoded_path_everywhere(self, fattree4, fattree4_codec, fattree4_fabric):
        src, dst = "h_0_0_0", "h_2_1_0"
        for path in fattree4.equal_cost_paths("tor_0_0", "tor_2_1"):
            src_addr, dst_addr = fattree4_codec.encode(src, dst, path)
            trace = fattree4_fabric.forward_trace(src, src_addr, dst_addr)
            assert trace == (src,) + path + (dst,)

    def test_trace_same_tor(self, fattree4, fattree4_codec, fattree4_fabric):
        src, dst = "h_0_0_0", "h_0_0_1"
        src_addr, dst_addr = fattree4_codec.encode(src, dst, ("tor_0_0",))
        assert fattree4_fabric.forward_trace(src, src_addr, dst_addr) == (
            src, "tor_0_0", dst,
        )

    def test_trace_detects_black_hole(self, fattree4_fabric):
        with pytest.raises(RoutingError):
            fattree4_fabric.forward_trace("h_0_0_0", 0, 0)

    def test_clos_trace_all_paths(self, clos44, clos44_fabric, clos44_addressing):
        codec = PathCodec(clos44_addressing)
        src, dst = "h_0_0", "h_2_0"
        for path in clos44.equal_cost_paths("tor_0", "tor_2"):
            src_addr, dst_addr = codec.encode(src, dst, path)
            trace = clos44_fabric.forward_trace(src, src_addr, dst_addr)
            assert trace == (src,) + path + (dst,)

    def test_threetier_trace_all_paths(self, threetier_small):
        addressing = HierarchicalAddressing(threetier_small)
        fabric = SwitchFabric(addressing)
        codec = PathCodec(addressing)
        src, dst = "h_0_0_0", "h_1_0_0"
        for path in threetier_small.equal_cost_paths("tor_0_0", "tor_1_0"):
            src_addr, dst_addr = codec.encode(src, dst, path)
            assert fabric.forward_trace(src, src_addr, dst_addr) == (src,) + path + (dst,)

    def test_table_entry_count_is_topology_bounded(self, fattree4, fattree4_fabric):
        """Static tables scale with topology size, never with flow count."""
        assert fattree4_fabric.num_table_entries() == sum(
            len(sw.downhill) + len(sw.uphill)
            for sw in fattree4_fabric.switches.values()
        )
        assert fattree4_fabric.num_table_entries() < 500
