"""RACE001 good fixture: a component round writing state it owns.

``_load_array`` names ``_refill_dirty`` in its declared writers, so the
identical write shape is sanctioned.
"""


class RoundKeeper:
    """Minimal shape for the rule: only the names matter."""

    def __init__(self, num_links):
        self._load_array = [0.0] * num_links

    def _refill_dirty(self, link_ids):
        for link_id in link_ids:
            self._load_array[link_id] = 0.0
