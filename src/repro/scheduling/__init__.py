"""Scheduler plug-in interface and shared scheduling utilities.

Every flow-scheduling approach under comparison — ECMP, periodic VLB,
Hedera's centralized scheduler, TeXCP, and DARD itself — implements
:class:`Scheduler` over the same :class:`repro.simulator.network.Network`,
so experiments differ *only* in scheduling policy.
"""

from repro.scheduling.base import Scheduler, SchedulerContext
from repro.scheduling.messages import MessageLedger, MessageSizes

__all__ = ["MessageLedger", "MessageSizes", "Scheduler", "SchedulerContext"]
