"""End-to-end integration tests reproducing the paper's headline claims
at miniature scale."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, improvement, run_scenario

TESTBED = dict(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    arrival_rate_per_host=0.06,
    duration_s=120.0,
    flow_size_bytes=128 * MB,
    seed=7,
)


def run(scheduler, pattern="stride", **overrides):
    config = {**TESTBED, **overrides}
    return run_scenario(ScenarioConfig(scheduler=scheduler, pattern=pattern, **config))


class TestHeadlineClaims:
    """The paper's abstract in test form."""

    def test_dard_beats_ecmp_under_stride(self):
        """'It outperforms previous solutions based on random flow-level
        scheduling by 10%' — under inter-pod-dominant traffic."""
        ecmp = run("ecmp")
        dard = run("dard")
        gain = improvement(ecmp.mean_fct, dard.mean_fct)
        assert gain > 0.10, f"DARD only improved by {gain:.1%}"

    def test_dard_close_to_centralized_under_stride(self):
        """'performs similarly to ... a centralized scheduler' — within 10%."""
        dard = run("dard")
        hedera = run("hedera")
        gap = (dard.mean_fct - hedera.mean_fct) / hedera.mean_fct
        assert gap < 0.10, f"DARD trails Hedera by {gap:.1%}"

    def test_dard_stable_path_switching(self):
        """'90% of the flows switch their paths less than 3 times in their
        life cycles.'"""
        dard = run("dard")
        switches = np.asarray(dard.path_switches)
        assert np.percentile(switches, 90) <= 3
        # Max stays below the number of available paths (4 on p=4).
        assert switches.max() < 4 + 1

    def test_dard_no_path_oscillation(self):
        """'no flow switches its paths back and forth' — zero or
        near-zero revisits to previously used paths."""
        dard = run("dard")
        revisits = np.asarray(dard.path_revisits)
        assert revisits.sum() <= max(1, 0.02 * len(revisits))

    def test_pvlb_does_oscillate(self):
        """Contrast: random re-picking regularly lands back on old paths,
        which is exactly the behaviour DARD's δ-gated selfish moves avoid."""
        vlb = run("vlb")
        assert sum(vlb.path_revisits) > sum(run("dard").path_revisits)

    def test_staggered_flows_mostly_never_switch(self):
        """'For the staggered traffic, around 90% of the flows stick to
        their original path assignment.'"""
        dard = run("dard", pattern="staggered")
        switches = np.asarray(dard.path_switches)
        assert (switches == 0).mean() > 0.7

    def test_pvlb_similar_to_ecmp(self):
        """'in most cases, [pVLB] performs similarly to [ECMP]' — the
        path-switch retransmission cost eats VLB's collision-avoidance
        gains; allow a generous band either way."""
        ecmp = run("ecmp", pattern="random")
        vlb = run("vlb", pattern="random")
        gap = abs(improvement(ecmp.mean_fct, vlb.mean_fct))
        assert gap < 0.25

    def test_dard_beats_texcp_on_goodput(self):
        """'outperforms TeXCP slightly' with far lower retransmission."""
        dard = run("dard")
        texcp = run("texcp")
        assert dard.mean_fct <= texcp.mean_fct * 1.05
        assert np.mean(dard.retx_rates) < np.mean(texcp.retx_rates)

    def test_texcp_retransmission_band(self):
        """TeXCP's retransmission rates land in the paper's 0-50% band,
        clearly above DARD's."""
        texcp = run("texcp")
        rates = np.asarray(texcp.retx_rates)
        assert rates.max() <= 0.5 + 1e-9
        assert rates.mean() > 0.02


class TestOverheadClaims:
    def test_dard_overhead_bounded_by_topology(self):
        """DARD's probe traffic is bounded by all-pairs probing, no matter
        the load (§4.3.4): 'in the worst case, the system only needs to
        handle all pair probes'."""
        heavy = run("dard", arrival_rate_per_host=0.12)
        # Ceiling: every host monitoring every other ToR, querying the
        # 9-switch inter-pod set (1 ToR + 2 aggs + 4 cores + 2 aggs) once
        # per second at 48+32 bytes per switch.
        hosts, other_tors, switch_set, msg_bytes = 16, 7, 9, 48 + 32
        ceiling = hosts * other_tors * switch_set * msg_bytes
        assert heavy.control_bytes_per_second < ceiling

    def test_centralized_overhead_tracks_flows(self):
        light = run("hedera", arrival_rate_per_host=0.04)
        heavy = run("hedera", arrival_rate_per_host=0.12)
        assert heavy.control_bytes > light.control_bytes

    def test_message_kinds(self):
        dard = run("dard", duration_s=45.0)
        assert set(dard.control_bytes_by_kind) == {"dard_query", "dard_reply"}
        hedera = run("hedera", duration_s=45.0)
        assert "report" in hedera.control_bytes_by_kind


class TestTopologyGenerality:
    """'a generic flow scheduling mechanism for all the above datacenter
    networks' — DARD must function (and not lose to ECMP) on every family."""

    @pytest.mark.parametrize(
        "topology,params",
        [
            ("clos", {"d_i": 4, "d_a": 4, "hosts_per_tor": 2, "link_bandwidth_bps": 100 * MBPS}),
            (
                "threetier",
                {
                    "num_cores": 4, "num_pods": 2, "aggs_per_pod": 2,
                    "access_per_pod": 3, "hosts_per_access": 2,
                    "link_bandwidth_bps": 100 * MBPS,
                },
            ),
        ],
    )
    def test_dard_no_worse_than_ecmp(self, topology, params):
        base = dict(TESTBED, topology=topology, topology_params=params,
                    arrival_rate_per_host=0.06, duration_s=60.0)
        ecmp = run_scenario(ScenarioConfig(scheduler="ecmp", pattern="stride", **base))
        dard = run_scenario(ScenarioConfig(scheduler="dard", pattern="stride", **base))
        assert dard.mean_fct <= ecmp.mean_fct * 1.02
