"""Datacenter topology substrate.

Provides the graph core plus the three topology families the paper evaluates
on: fat-tree (Al-Fares et al.), Clos/VL2 (Greenberg et al.), and the
oversubscribed 8-core 3-tier design (Cisco reference architecture).

All three are *multi-rooted trees* with exactly three switch layers
(ToR/access, aggregation, core/intermediate); :class:`MultiRootedTopology`
captures that shared structure and provides equal-cost path enumeration and
the downhill-chain inventory the addressing subsystem allocates prefixes
along.
"""

from repro.topology.clos import ClosNetwork
from repro.topology.custom import CustomTopology, TopologySpec, build_custom
from repro.topology.fattree import FatTree
from repro.topology.graph import Link, Node, NodeKind, Topology
from repro.topology.multirooted import MultiRootedTopology
from repro.topology.threetier import ThreeTier

__all__ = [
    "ClosNetwork",
    "CustomTopology",
    "FatTree",
    "Link",
    "Node",
    "NodeKind",
    "Topology",
    "TopologySpec",
    "MultiRootedTopology",
    "ThreeTier",
    "build_custom",
]


def build_topology(kind: str, **kwargs) -> MultiRootedTopology:
    """Construct a topology by family name.

    ``kind`` is one of ``"fattree"``, ``"clos"``, or ``"threetier"``;
    keyword arguments are forwarded to the corresponding constructor.
    """
    factories = {
        "fattree": FatTree,
        "clos": ClosNetwork,
        "threetier": ThreeTier,
    }
    if kind not in factories:
        raise ValueError(f"unknown topology kind {kind!r}; expected one of {sorted(factories)}")
    return factories[kind](**kwargs)
