"""Hedera-style centralized flow scheduling (Al-Fares et al., NSDI 2010).

The paper's "Simulated Annealing" comparison point: every scheduling period
(5 s) the edge switches report elephant flows to a central controller,
which (1) estimates each elephant's *natural demand* — the max-min fair
rate it would get if only host NICs constrained it — and (2) runs simulated
annealing to place elephants on paths minimizing the most-loaded link, then
pushes flow-table updates to the switches.

Faithful to both Hedera and the DARD paper's re-implementation notes:

* the annealer searches **per-destination-host** path assignments, not
  per-flow ones ("it does not schedule the traffic in granularity of a
  single flow, but assigns core switches to destination hosts to limit the
  searching space", §4.3.1) — the very restriction that makes it weak when
  intra-pod traffic dominates;
* for Clos networks the assignment names the uphill/downhill aggregation
  pair as well, since a core alone does not determine a Clos path (§4.3.2);
  a :class:`PathSelector` covers both cases uniformly;
* control messages are ledgered at the paper's sizes (80 B reports, 72 B
  updates) for the Fig. 15 overhead comparison.

New flows start on ECMP paths — Hedera only ever reassigns elephants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.scheduling.base import Scheduler, SchedulerContext
from repro.scheduling.messages import MessageSizes
from repro.simulator.flows import Flow, FlowComponent
from repro.topology.multirooted import SwitchPath
from repro.baselines.ecmp import five_tuple_hash

DEFAULT_SCHEDULING_INTERVAL_S = 5.0
DEFAULT_ANNEALING_ITERATIONS = 1000
_DEMAND_EPS = 1e-9


# ---------------------------------------------------------------------------
# Demand estimation (Hedera §IV-A)
# ---------------------------------------------------------------------------

def estimate_demands(
    flow_pairs: Sequence[Tuple[str, str]],
    max_rounds: int = 100,
) -> List[float]:
    """Natural demand of each flow as a fraction of host NIC bandwidth.

    Alternates sender and receiver passes: senders divide their unit NIC
    equally among their unconverged flows; receivers that would be
    oversubscribed cap their incoming flows to an equal share, marking them
    converged. Converges to the max-min fair allocation of the hosts-only
    network (switch links assumed non-blocking), which Hedera uses as each
    flow's bandwidth requirement.
    """
    n = len(flow_pairs)
    demand = [0.0] * n
    converged = [False] * n
    by_src: Dict[str, List[int]] = {}
    by_dst: Dict[str, List[int]] = {}
    for i, (src, dst) in enumerate(flow_pairs):
        by_src.setdefault(src, []).append(i)
        by_dst.setdefault(dst, []).append(i)

    for _ in range(max_rounds):
        previous = list(demand)
        # Sender pass: spread leftover NIC capacity over unconverged flows.
        for indices in by_src.values():
            fixed = sum(demand[i] for i in indices if converged[i])
            free = [i for i in indices if not converged[i]]
            if free:
                share = max(0.0, 1.0 - fixed) / len(free)
                for i in free:
                    demand[i] = share
        # Receiver pass: cap oversubscribed receivers, converging the capped.
        for indices in by_dst.values():
            total = sum(demand[i] for i in indices)
            if total <= 1.0 + _DEMAND_EPS:
                continue
            # Kept as an ascending list (indices is built in flow order):
            # the budget subtractions below are float ops, so their order
            # must not depend on set hash order.
            limited = list(indices)
            budget = 1.0
            while True:
                share = budget / len(limited)
                small = [i for i in limited if demand[i] < share - _DEMAND_EPS]
                if not small:
                    break
                for i in small:
                    limited.remove(i)
                    budget -= demand[i]
            for i in limited:
                demand[i] = share
                converged[i] = True
        if all(abs(demand[i] - previous[i]) < _DEMAND_EPS for i in range(n)):
            break
    return demand


# ---------------------------------------------------------------------------
# Per-destination path selectors (the annealer's search space)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PathSelector:
    """A destination's assigned route choice, topology-family agnostic.

    ``core`` indexes the turning point (a core switch for inter-pod paths,
    an aggregation switch for intra-pod ones); ``up`` and ``down`` break
    remaining ties in Clos/3-tier topologies where a core does not uniquely
    determine the aggregation switches. All indices wrap modulo the number
    of available choices, so one selector applies from any source ToR.
    """

    core: int
    up: int = 0
    down: int = 0

    def apply(self, paths: List[SwitchPath]) -> SwitchPath:
        """Resolve this selector against a concrete equal-cost path set."""
        if not paths:
            raise ValueError("empty path set")
        if len(paths[0]) != 5:
            # Intra-pod (3-hop) or same-ToR (1-hop): only one level of choice.
            return paths[self.core % len(paths)]
        cores = sorted({p[2] for p in paths})
        core = cores[self.core % len(cores)]
        via = [p for p in paths if p[2] == core]
        ups = sorted({p[1] for p in via})
        up = ups[self.up % len(ups)]
        via = [p for p in via if p[1] == up]
        downs = sorted({p[3] for p in via})
        down = downs[self.down % len(downs)]
        for p in via:
            if p[3] == down:
                return p
        raise ValueError("selector resolution failed")  # pragma: no cover


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class HederaScheduler(Scheduler):
    """Centralized demand-estimation + simulated-annealing scheduling."""

    name = "hedera"

    def __init__(
        self,
        scheduling_interval_s: float = DEFAULT_SCHEDULING_INTERVAL_S,
        annealing_iterations: int = DEFAULT_ANNEALING_ITERATIONS,
        initial_temperature: float = 1.0,
        message_sizes: MessageSizes = MessageSizes(),
    ) -> None:
        super().__init__()
        self.scheduling_interval_s = scheduling_interval_s
        self.annealing_iterations = annealing_iterations
        self.initial_temperature = initial_temperature
        self.message_sizes = message_sizes
        self._assignments: Dict[str, PathSelector] = {}
        # Memo for selector resolution: (src ToR, dst ToR, selector) -> links.
        self._links_cache: Dict[tuple, List[Tuple[str, str]]] = {}

    def attach(self, ctx: SchedulerContext) -> None:
        super().attach(ctx)
        ctx.engine.schedule_every(self.scheduling_interval_s, self._schedule_round)
        ctx.network.link_failed_listeners.append(self._on_link_failed)
        ctx.network.link_restored_listeners.append(self._on_link_restored)

    def _on_link_failed(self, u: str, v: str) -> None:
        # The fabric re-hashes immediately (routing re-convergence); the
        # controller re-optimizes at its next scheduling round.
        self._links_cache.clear()

        def hash_pick(paths):
            sport = int(self.ctx.rng.integers(1024, 65536))
            dport = int(self.ctx.rng.integers(1024, 65536))
            return paths[five_tuple_hash("rehash", "rehash", sport, dport, len(paths))]

        self.evacuate_failed_link(u, v, hash_pick)

    def _on_link_restored(self, u: str, v: str) -> None:
        self._links_cache.clear()

    # -- placement: plain ECMP until the controller says otherwise ------------

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        paths = self.alive_paths(src, dst)
        sport = int(self.ctx.rng.integers(1024, 65536))
        dport = int(self.ctx.rng.integers(1024, 65536))
        index = five_tuple_hash(src, dst, sport, dport, len(paths))
        return [self.component_for(src, dst, paths[index])]

    # -- the periodic central round ----------------------------------------------

    def _schedule_round(self) -> None:
        network = self.ctx.network
        elephants = network.active_elephants()
        if not elephants:
            return
        # Edge switches report every elephant to the controller.
        self.ledger.record("report", self.message_sizes.report_to_controller, len(elephants))
        demands = estimate_demands([(f.src, f.dst) for f in elephants])
        nic_bps = min(
            network.capacities[(f.src, network.topology.tor_of(f.src))] for f in elephants
        )
        demand_bps = [d * nic_bps for d in demands]
        assignments = self._anneal(elephants, demand_bps)
        self._assignments.update(assignments)
        self._apply(elephants)

    def _paths_for_flow(self, flow: Flow) -> List[SwitchPath]:
        return self.alive_paths(flow.src, flow.dst)

    def _flow_path(self, flow: Flow, assignment: Dict[str, PathSelector]) -> SwitchPath:
        paths = self._paths_for_flow(flow)
        selector = assignment.get(flow.dst)
        if selector is None:
            return tuple(flow.switch_path()[1:-1])
        return selector.apply(paths)

    def _energy(
        self,
        elephants: Sequence[Flow],
        demand_bps: Sequence[float],
        assignment: Dict[str, PathSelector],
    ) -> float:
        """Max expected switch-link utilization under an assignment."""
        network = self.ctx.network
        load: Dict[Tuple[str, str], float] = {}
        for flow, demand in zip(elephants, demand_bps):
            path = self._flow_path(flow, assignment)
            for link in zip(path, path[1:]):
                load[link] = load.get(link, 0.0) + demand
        if not load:
            return 0.0
        return max(total / network.capacities[link] for link, total in load.items())

    def _random_selector(self) -> PathSelector:
        rng = self.ctx.rng
        return PathSelector(
            core=int(rng.integers(0, 1 << 16)),
            up=int(rng.integers(0, 4)),
            down=int(rng.integers(0, 4)),
        )

    def _anneal(
        self, elephants: Sequence[Flow], demand_bps: Sequence[float]
    ) -> Dict[str, PathSelector]:
        """Simulated annealing over per-destination selectors.

        Moves are evaluated incrementally: changing one destination's
        selector only re-routes the flows headed to that destination, so
        each iteration applies a load delta for those flows and re-reads
        the max utilization, reverting on rejection.
        """
        rng = self.ctx.rng
        network = self.ctx.network
        dsts = sorted({f.dst for f in elephants})
        flows_by_dst: Dict[str, List[Tuple[Flow, float]]] = {}
        for flow, demand in zip(elephants, demand_bps):
            flows_by_dst.setdefault(flow.dst, []).append((flow, demand))
        current = {
            dst: self._assignments.get(dst, self._random_selector()) for dst in dsts
        }
        load: Dict[Tuple[str, str], float] = {}
        for flow, demand in zip(elephants, demand_bps):
            for link in self._flow_links(flow, current[flow.dst]):
                load[link] = load.get(link, 0.0) + demand

        # Energy: sum of squared link utilizations. Same minimizer as
        # "spread the demand evenly", but smooth — unlike raw
        # max-utilization it gives the annealer a gradient instead of a
        # plateau (Hedera's own energy, exceeded demand on oversubscribed
        # links, plays the same role in the original system). Maintained
        # incrementally as moves touch links.
        energy = 0.0
        for link, total in load.items():
            energy += (total / network.capacities[link]) ** 2

        def shift_dst(dst: str, selector: PathSelector, sign: float) -> float:
            """Apply a load change; returns the energy delta it caused."""
            delta = 0.0
            for flow, demand in flows_by_dst[dst]:
                for link in self._flow_links(flow, selector):
                    cap = network.capacities[link]
                    old = load.get(link, 0.0)
                    new = old + sign * demand
                    load[link] = new
                    delta += (new / cap) ** 2 - (old / cap) ** 2
            return delta

        best = dict(current)
        best_energy = energy
        iterations = self.annealing_iterations
        if iterations <= 0:
            return best
        cooling = math.exp(math.log(1e-3) / iterations)  # T: 1 -> 1e-3
        temperature = self.initial_temperature
        for _ in range(iterations):
            dst = dsts[int(rng.integers(len(dsts)))]
            proposed = self._random_selector()
            previous = current[dst]
            delta = shift_dst(dst, previous, -1.0) + shift_dst(dst, proposed, +1.0)
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                current[dst] = proposed
                energy += delta
                if energy < best_energy:
                    best = dict(current)
                    best_energy = energy
            else:
                shift_dst(dst, proposed, -1.0)
                shift_dst(dst, previous, +1.0)
            temperature *= cooling
        return best

    def _flow_links(
        self, flow: Flow, selector: PathSelector
    ) -> List[Tuple[str, str]]:
        topo = self.ctx.topology
        key = (topo.tor_of(flow.src), topo.tor_of(flow.dst), selector)
        links = self._links_cache.get(key)
        if links is None:
            path = selector.apply(self._paths_for_flow(flow))
            links = list(zip(path, path[1:]))
            self._links_cache[key] = links
        return links

    def _apply(self, elephants: Sequence[Flow]) -> None:
        """Push the chosen assignment: reroute elephants that moved."""
        network = self.ctx.network
        for flow in elephants:
            if not flow.active:
                continue
            new_path = self._flow_path(flow, self._assignments)
            if new_path == tuple(flow.switch_path()[1:-1]):
                continue
            component = self.component_for(flow.src, flow.dst, new_path)
            network.reroute_flow(flow, [component])
            # One table update per switch along the new path.
            self.ledger.record(
                "update", self.message_sizes.update_from_controller, len(new_path)
            )
