"""Tests for hierarchical prefix allocation and host multi-addressing."""

import pytest

from repro.common.errors import AddressingError
from repro.addressing import HierarchicalAddressing, IdMapper
from repro.addressing.prefix import Prefix
from repro.topology import ClosNetwork, FatTree


class TestAllocationStructure:
    def test_addresses_per_host_fattree(self, fattree4, fattree4_addressing):
        """Every fat-tree host gets p^2/4 addresses, one per core (paper
        Figure 2: 'every end host gets four addresses')."""
        for host in fattree4.hosts():
            assert fattree4_addressing.num_addresses_per_host(host) == 4

    def test_addresses_per_host_clos(self, clos44, clos44_addressing):
        # D_A addresses per host: 2 intermediates x 2 parent aggs.
        for host in clos44.hosts():
            assert clos44_addressing.num_addresses_per_host(host) == 4

    def test_core_prefixes_disjoint(self, fattree4, fattree4_addressing):
        cores = fattree4.cores()
        prefixes = [fattree4_addressing.core_prefix(c) for c in cores]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_sibling_chain_prefixes_disjoint(self, fattree4, fattree4_addressing):
        chains = list(fattree4.downhill_chains())
        prefixes = [fattree4_addressing.chain_prefix(c) for c in chains]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_chain_prefix_nested_in_agg_and_core(self, fattree4, fattree4_addressing):
        for core, agg, tor in fattree4.downhill_chains():
            core_pfx = fattree4_addressing.core_prefix(core)
            agg_pfx = fattree4_addressing.agg_prefix(core, agg)
            chain_pfx = fattree4_addressing.chain_prefix((core, agg, tor))
            assert core_pfx.contains_prefix(agg_pfx)
            assert agg_pfx.contains_prefix(chain_pfx)

    def test_every_address_unique(self, fattree4, fattree4_addressing):
        seen = set()
        for host in fattree4.hosts():
            for addr in fattree4_addressing.addresses_of(host).values():
                assert addr not in seen
                seen.add(addr)

    def test_address_encodes_allocation_chain(self, fattree4, fattree4_addressing):
        """One address uniquely encodes the switch sequence that allocated
        it (the property path encoding relies on, §2.3)."""
        for host in fattree4.hosts():
            for chain, addr in fattree4_addressing.addresses_of(host).items():
                assert fattree4_addressing.owner_of(addr) == (host, chain)

    def test_all_addresses_inside_base(self, fattree4, fattree4_addressing):
        base = fattree4_addressing.base
        for host in fattree4.hosts():
            for addr in fattree4_addressing.addresses_of(host).values():
                assert base.contains_address(addr)


class TestAllocationErrors:
    def test_unknown_core(self, fattree4_addressing):
        with pytest.raises(AddressingError):
            fattree4_addressing.core_prefix("tor_0_0")

    def test_unknown_chain(self, fattree4_addressing):
        with pytest.raises(AddressingError):
            fattree4_addressing.chain_prefix(("core_0_0", "agg_1_0", "tor_0_0"))

    def test_unknown_host(self, fattree4_addressing):
        with pytest.raises(AddressingError):
            fattree4_addressing.addresses_of("agg_0_0")

    def test_unallocated_address(self, fattree4_addressing):
        with pytest.raises(AddressingError):
            fattree4_addressing.owner_of(1)

    def test_host_missing_chain(self, fattree4, fattree4_addressing):
        chain = next(iter(fattree4.downhill_chains()))
        other_tor_host = next(
            h for h in fattree4.hosts() if fattree4.tor_of(h) != chain[2]
        )
        with pytest.raises(AddressingError):
            fattree4_addressing.address_of(other_tor_host, chain)

    def test_exhausted_space_raises(self):
        # A /28 base cannot fit a fat-tree's four 6-bit-minimum levels.
        with pytest.raises(AddressingError):
            HierarchicalAddressing(FatTree(p=4), base=Prefix.parse("10.0.0.0/28"))


class TestAutoWidening:
    def test_wider_level_bits_when_needed(self):
        """p=32 would need 256 cores > 2^6; the allocator widens the core
        field instead of failing (the paper's fixed 6-bit scheme caps at
        p=16)."""
        topo = FatTree(p=4)
        addressing = HierarchicalAddressing(topo, bits_per_level=2)
        # 4 cores fit in 2 bits; all good with narrower levels too.
        assert addressing.core_bits == 2
        for host in topo.hosts():
            assert addressing.num_addresses_per_host(host) == 4

    def test_bits_reported(self, fattree4_addressing):
        assert fattree4_addressing.core_bits == 6
        assert fattree4_addressing.host_bits == 32 - 8 - 18

    def test_default_base_stays_slash_8_when_it_fits(self, fattree4_addressing):
        # Topologies that fit under the paper's /8 keep their exact
        # historical addresses — the base only shrinks when it must.
        assert str(fattree4_addressing.base) == "10.0.0.0/8"

    def test_default_base_auto_shortens_when_hierarchy_overflows(self):
        """p=64 fat-trees need 10+6+6 level bits + 5 host bits = 27 > 24;
        with no explicit base the allocator shortens the default /8 to the
        longest base that fits, rather than failing."""
        topo = FatTree(p=4)
        # Force the overflow cheaply: 10-bit levels cost 30 bits, leaving
        # fewer than the 1 host bit p=4's two-host ToRs need under /8.
        addressing = HierarchicalAddressing(topo, bits_per_level=10)
        assert addressing.base.length < 8
        assert addressing.host_bits >= 1
        for host in topo.hosts():
            assert addressing.num_addresses_per_host(host) == 4

    def test_p64_boundary_pins_default_base(self):
        """Regression pin for the p=64 scale target: its hierarchy costs
        10 (core) + 6 (agg) + 6 (tor) level bits plus 5 host bits = 27,
        three over the /8's 24-bit budget. The auto-shortened default
        must be exactly the /5 that preserves 10.0.0.0's leading bits —
        not some other length, and not an error."""
        base = HierarchicalAddressing._default_base(22, 5)
        assert str(base) == "8.0.0.0/5"
        # At exactly 24 bits the historical /8 still fits and survives.
        assert str(HierarchicalAddressing._default_base(19, 5)) == "10.0.0.0/8"
        # Past 32 bits nothing fits: explicit error, not a silent wrap.
        with pytest.raises(AddressingError):
            HierarchicalAddressing._default_base(30, 3)

    def test_explicit_base_is_never_adjusted(self):
        with pytest.raises(AddressingError):
            HierarchicalAddressing(
                FatTree(p=4), base=Prefix.parse("10.0.0.0/8"), bits_per_level=10
            )


class TestIdMapper:
    def test_round_trip(self, fattree4):
        mapper = IdMapper(fattree4.hosts())
        for host in fattree4.hosts():
            assert mapper.host_of(mapper.id_of(host)) == host

    def test_ids_outside_locator_space(self, fattree4, fattree4_addressing):
        mapper = IdMapper(fattree4.hosts())
        for host in fattree4.hosts():
            with pytest.raises(AddressingError):
                fattree4_addressing.owner_of(mapper.id_of(host))

    def test_unknown_lookups(self, fattree4):
        mapper = IdMapper(fattree4.hosts())
        with pytest.raises(AddressingError):
            mapper.id_of("ghost")
        with pytest.raises(AddressingError):
            mapper.host_of(12345)

    def test_len_and_contains(self, fattree4):
        mapper = IdMapper(fattree4.hosts())
        assert len(mapper) == 16
        assert "h_0_0_0" in mapper
        assert "ghost" not in mapper

    def test_overflow_rejected(self):
        hosts = [f"h{i}" for i in range(5)]
        with pytest.raises(AddressingError):
            IdMapper(hosts, id_space=Prefix.parse("192.168.0.0/30"))
