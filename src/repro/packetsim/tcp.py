"""A compact TCP Reno-style sender/receiver pair.

Implements the mechanisms the validation needs — slow start, congestion
avoidance, triple-duplicate-ACK fast retransmit, and a coarse
retransmission timeout — over cumulative ACKs (no SACK). Multipath
striping sends successive segments over different paths weighted by split
ratios, which is what turns path delay spread into duplicate ACKs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.simulator.engine import EventEngine, EventHandle


@dataclass(frozen=True)
class TcpParams:
    """Tunables; defaults suit 100 Mbps / sub-ms-RTT fabrics."""

    mss_bytes: int = 1500
    initial_cwnd: float = 2.0
    initial_ssthresh: float = 64.0
    min_rto_s: float = 0.05
    dupack_threshold: int = 3


class TcpReceiver:
    """Cumulative-ACK receiver: tracks the in-order frontier."""

    def __init__(self, total_segments: int) -> None:
        self.total_segments = total_segments
        self._received = set()
        self.cumulative = 0  # next expected segment index

    def on_segment(self, seq: int) -> int:
        """Register an arriving segment; returns the cumulative ACK."""
        if seq >= self.cumulative:  # ignore stale duplicates below the frontier
            self._received.add(seq)
        while self.cumulative in self._received:
            self._received.discard(self.cumulative)
            self.cumulative += 1
        return self.cumulative

    @property
    def complete(self) -> bool:
        return self.cumulative >= self.total_segments


class TcpSender:
    """Reno-style congestion control over abstract transmit callbacks.

    The owner provides ``send_segment(seq) -> one-way delay or None`` —
    None signals a queue drop. ACKs come back via :meth:`on_ack`.
    """

    def __init__(
        self,
        engine: EventEngine,
        total_segments: int,
        send_segment: Callable[[int], None],
        params: TcpParams = TcpParams(),
    ) -> None:
        if total_segments < 1:
            raise ConfigurationError(f"need >= 1 segment, got {total_segments}")
        self.engine = engine
        self.total_segments = total_segments
        self.send_segment = send_segment
        self.params = params
        self.cwnd = params.initial_cwnd
        self.ssthresh = params.initial_ssthresh
        self.next_seq = 0
        self.highest_acked = 0  # segments below this are acked
        self.dup_acks = 0
        self.retransmissions = 0
        self._max_seq_sent = 0  # high-water mark; resends below it count as retx
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[[], None]] = None
        self._srtt: Optional[float] = None
        self._rto_handle: Optional[EventHandle] = None
        self._send_times = {}
        self.timeouts = 0
        self._backoff = 1.0  # exponential RTO multiplier (Karn-style)

    # -- window pump --------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (send the initial window)."""
        self.pump()

    def pump(self) -> None:
        """Send while the congestion window has room."""
        while (
            self.next_seq < self.total_segments
            and self.next_seq < self.highest_acked + int(self.cwnd)
        ):
            seq = self.next_seq
            self.next_seq += 1
            if seq < self._max_seq_sent:
                self.retransmissions += 1
            else:
                self._max_seq_sent = seq + 1
            self._send_times[seq] = self.engine.now
            self.send_segment(seq)
        self._arm_rto()

    # -- ACK clocking ---------------------------------------------------------------

    def on_ack(self, cumulative: int) -> None:
        """Process a cumulative ACK: grow/shrink the window, detect loss."""
        if self.completed_at is not None:
            return
        if cumulative > self.highest_acked:
            newly = cumulative - self.highest_acked
            self.highest_acked = cumulative
            self.dup_acks = 0
            self._backoff = 1.0  # new data acked: the path is alive again
            self._update_rtt(cumulative - 1)
            for _ in range(newly):
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0  # slow start
                else:
                    self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            if self.highest_acked >= self.total_segments:
                self.completed_at = self.engine.now
                self._cancel_rto()
                if self.on_complete is not None:
                    self.on_complete()
                return
            self.pump()
        else:
            self.dup_acks += 1
            if self.dup_acks == self.params.dupack_threshold:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        """Three duplicate ACKs: resend the frontier segment, halve cwnd."""
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        self.dup_acks = 0
        self.retransmissions += 1
        self._send_times[self.highest_acked] = self.engine.now
        self.send_segment(self.highest_acked)
        self._arm_rto()

    # -- RTO ---------------------------------------------------------------------------

    def _update_rtt(self, seq: int) -> None:
        sent = self._send_times.pop(seq, None)
        if sent is None:
            return
        sample = self.engine.now - sent
        self._srtt = sample if self._srtt is None else 0.875 * self._srtt + 0.125 * sample

    @property
    def rto_s(self) -> float:
        if self._srtt is None:
            return self.params.min_rto_s * self._backoff
        return max(self.params.min_rto_s, 4.0 * self._srtt) * self._backoff

    def _arm_rto(self) -> None:
        self._cancel_rto()
        if self.completed_at is not None:
            return
        self._rto_handle = self.engine.schedule_in(self.rto_s, self._on_timeout)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_timeout(self) -> None:
        """Coarse timeout: multiplicative back-off, then go-back-N.

        Without SACK a loss burst leaves the receiver full of holes the
        sender cannot see; rewinding ``next_seq`` to the ACK frontier
        resends everything outstanding (cheap segments the receiver
        already has are re-ACKed immediately) and recovers in one RTT
        instead of one RTO per hole.

        Each *consecutive* timeout doubles the RTO (capped at 64x), so a
        sender facing a black-holed path backs off 50ms, 100ms, 200ms, ...
        instead of hammering it; the first ACK of new data resets the
        multiplier.
        """
        self._rto_handle = None
        if self.completed_at is not None or self.highest_acked >= self.total_segments:
            return
        self.timeouts += 1
        self._backoff = min(64.0, self._backoff * 2.0)
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.params.initial_cwnd
        self.dup_acks = 0
        self.next_seq = self.highest_acked
        self.pump()
