"""Graph core: nodes, links, and the base :class:`Topology`.

Links are physical full-duplex cables; the simulator treats each direction
as an independent capacity, so :meth:`Topology.directed_links` enumerates
both ``(u, v)`` and ``(v, u)`` for every cable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import TopologyError


class NodeKind(Enum):
    """Role of a node in a multi-rooted tree datacenter topology."""

    HOST = "host"
    TOR = "tor"  # top-of-rack / access switch
    AGG = "agg"  # aggregation switch
    CORE = "core"  # core / intermediate switch

    @property
    def is_switch(self) -> bool:
        return self is not NodeKind.HOST

    @property
    def layer(self) -> int:
        """Height in the tree: hosts are 0, cores are 3."""
        return {NodeKind.HOST: 0, NodeKind.TOR: 1, NodeKind.AGG: 2, NodeKind.CORE: 3}[self]


@dataclass(frozen=True)
class Node:
    """A host or switch.

    ``pod`` is ``None`` for cores and for topologies without pods; ``index``
    is the node's ordinal among same-kind nodes (within its pod when podded).
    """

    name: str
    kind: NodeKind
    pod: Optional[int] = None
    index: int = 0


@dataclass(frozen=True)
class Link:
    """A full-duplex cable between two nodes with per-direction bandwidth.

    ``bandwidth_bps`` applies independently to each direction. ``delay_s``
    is the one-way propagation delay (used by the reordering model).
    """

    u: str
    v: str
    bandwidth_bps: float
    delay_s: float = 0.0001  # paper: 0.1 ms per link

    def endpoints(self) -> Tuple[str, str]:
        """The (u, v) node pair this cable joins."""
        return (self.u, self.v)


@dataclass
class Topology:
    """An undirected multigraph-free topology of hosts and switches."""

    nodes: Dict[str, Node] = field(default_factory=dict)
    _adj: Dict[str, List[str]] = field(default_factory=dict)
    _links: Dict[Tuple[str, str], Link] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node; duplicate names are rejected."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self._adj[node.name] = []

    def add_link(self, u: str, v: str, bandwidth_bps: float, delay_s: float = 0.0001) -> None:
        """Add a full-duplex cable between existing nodes ``u`` and ``v``."""
        for name in (u, v):
            if name not in self.nodes:
                raise TopologyError(f"link endpoint {name!r} is not a node")
        if u == v:
            raise TopologyError(f"self-loop on {u!r}")
        key = self._key(u, v)
        if key in self._links:
            raise TopologyError(f"duplicate link {u!r}-{v!r}")
        self._links[key] = Link(key[0], key[1], bandwidth_bps, delay_s)
        self._adj[u].append(v)
        self._adj[v].append(u)

    @staticmethod
    def _key(u: str, v: str) -> Tuple[str, str]:
        return (u, v) if u <= v else (v, u)

    # -- queries -----------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"no such node {name!r}") from None

    def has_link(self, u: str, v: str) -> bool:
        """Whether a cable joins ``u`` and ``v`` (either order)."""
        return self._key(u, v) in self._links

    def link(self, u: str, v: str) -> Link:
        """The cable between ``u`` and ``v`` (either order)."""
        try:
            return self._links[self._key(u, v)]
        except KeyError:
            raise TopologyError(f"no link between {u!r} and {v!r}") from None

    def neighbors(self, name: str) -> List[str]:
        """Neighbors of ``name`` in deterministic (insertion) order."""
        if name not in self._adj:
            raise TopologyError(f"no such node {name!r}")
        return list(self._adj[name])

    def links(self) -> Iterator[Link]:
        """Every cable, once each."""
        return iter(self._links.values())

    def directed_links(self) -> Iterator[Tuple[str, str]]:
        """All (u, v) ordered pairs, one per direction per cable."""
        for link in self._links.values():
            yield (link.u, link.v)
            yield (link.v, link.u)

    def nodes_of_kind(self, kind: NodeKind) -> List[str]:
        """Names of all nodes of one kind."""
        return [n.name for n in self.nodes.values() if n.kind is kind]

    def hosts(self) -> List[str]:
        """All host names."""
        return self.nodes_of_kind(NodeKind.HOST)

    def switches(self) -> List[str]:
        """All switch names (every non-host node)."""
        return [n.name for n in self.nodes.values() if n.kind.is_switch]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def path_links(self, path: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
        """The directed links traversed by a node path, validating adjacency."""
        hops = []
        for u, v in zip(path, path[1:]):
            if not self.has_link(u, v):
                raise TopologyError(f"path uses non-existent link {u!r}->{v!r}")
            hops.append((u, v))
        return tuple(hops)
