"""Ablation: the δ shift threshold (paper §2.5).

δ=0 accepts any improving shift ("make sure a path switching will not
decrease the global minimum BoNF"); larger δ trades performance for
stability. Expectation: shift counts fall monotonically as δ rises, and a
huge δ degenerates toward ECMP performance.
"""

from repro.experiments.figures import ablation_delta
from conftest import run_once


def test_ablation_delta(benchmark, save_output):
    output = run_once(
        benchmark, ablation_delta, deltas_mbps=(0.0, 10.0, 50.0), duration_s=90.0
    )
    save_output(output)
    rows = sorted(output.rows, key=lambda r: r["delta_mbps"])
    # More conservative thresholds shift less.
    assert rows[0]["shifts_total"] >= rows[-1]["shifts_total"]
    # The paper's default (10 Mbps) stays effective: it still shifts.
    default = next(r for r in rows if r["delta_mbps"] == 10.0)
    assert default["shifts_total"] > 0
