"""API002 bad fixture: pushing onto the event heap behind the engine."""

import heapq


def sneak_push(engine, when, event):
    """Skips the engine's monotonic sequence numbers."""
    heapq.heappush(engine._heap, (when, event))
