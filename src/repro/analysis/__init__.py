"""Analysis tooling: topology reports, parameter sweeps, result export,
and time-series sampling of a live simulation.

These are the utilities a user adopting the library reaches for after the
first experiment: quantify a topology's bisection bandwidth and path
diversity before choosing it, sweep a parameter grid reproducibly, export
results for external plotting, and sample per-flow rates or link
utilizations over time.
"""

from repro.analysis.export import records_to_csv, results_to_json, rows_to_csv
from repro.analysis.network_stats import NetworkSample, NetworkStatsSampler
from repro.analysis.parallel import parallel_sweep, run_scenarios_parallel
from repro.analysis.sampling import LinkUtilizationSampler, RateSampler
from repro.analysis.sweep import sweep
from repro.analysis.topology_report import TopologyReport, analyze_topology

__all__ = [
    "LinkUtilizationSampler",
    "NetworkSample",
    "NetworkStatsSampler",
    "RateSampler",
    "TopologyReport",
    "analyze_topology",
    "parallel_sweep",
    "records_to_csv",
    "results_to_json",
    "rows_to_csv",
    "run_scenarios_parallel",
    "sweep",
]
