"""Tests for the analytic overhead models, Network.check_invariants, and
custom topologies built from specs."""

import pytest

from repro.common.errors import SimulationError, TopologyError
from repro.common.units import MB, MBPS, GBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.core import (
    centralized_rate_bytes_per_s,
    dard_probe_ceiling_bytes_per_s,
    overhead_model,
)
from repro.core.overhead import bytes_per_monitor_round, dard_probe_rate_bytes_per_s
from repro.experiments import ScenarioConfig, run_scenario
from repro.simulator import FlowComponent, Network
from repro.switches import SwitchFabric
from repro.topology import FatTree, TopologySpec, build_custom


class TestOverheadModel:
    def test_monitor_round_cost_fattree_interpod(self, fattree4):
        # 9 switches x (48 + 32) bytes.
        cost = bytes_per_monitor_round(fattree4, "tor_0_0", "tor_1_0")
        assert cost == 9 * 80

    def test_ceiling_counts_every_pair(self, fattree4):
        ceiling = dard_probe_ceiling_bytes_per_s(fattree4, query_interval_s=1.0)
        # 8 ToRs x 2 hosts; per host: 6 inter-pod (9 switches) + 1
        # intra-pod (3 switches) destinations.
        per_host = 6 * 9 * 80 + 1 * 3 * 80
        assert ceiling == 16 * per_host

    def test_ceiling_scales_with_interval(self, fattree4):
        fast = dard_probe_ceiling_bytes_per_s(fattree4, query_interval_s=0.5)
        slow = dard_probe_ceiling_bytes_per_s(fattree4, query_interval_s=2.0)
        assert fast == 4 * slow

    def test_invalid_interval(self, fattree4):
        with pytest.raises(ValueError):
            dard_probe_ceiling_bytes_per_s(fattree4, query_interval_s=0)

    def test_centralized_linear_in_flows(self):
        one = centralized_rate_bytes_per_s(100, updates_per_round=0)
        two = centralized_rate_bytes_per_s(200, updates_per_round=0)
        assert two == 2 * one
        with pytest.raises(ValueError):
            centralized_rate_bytes_per_s(1, 0, scheduling_interval_s=0)

    def test_simulated_dard_overhead_below_ceiling(self):
        """The simulator's measured probe bandwidth never beats the math."""
        config = ScenarioConfig(
            topology="fattree",
            topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
            pattern="stride",
            scheduler="dard",
            arrival_rate_per_host=0.10,
            duration_s=60.0,
            flow_size_bytes=128 * MB,
            seed=2,
        )
        result = run_scenario(config)
        ceiling = dard_probe_ceiling_bytes_per_s(
            FatTree(p=4, link_bandwidth_bps=100 * MBPS), query_interval_s=1.0
        )
        assert result.control_bytes_per_second < ceiling

    def test_bundle(self, fattree4):
        model = overhead_model(fattree4)
        assert model.dard_ceiling_bytes_per_s > 0
        assert model.bytes_per_monitor_round == 9 * 80
        assert model.report_bytes_per_elephant == 80.0

    def test_estimated_rate(self, fattree4):
        rate = dard_probe_rate_bytes_per_s(fattree4, active_pairs=10)
        assert rate == 10 * 9 * 80


class TestCheckInvariants:
    def test_clean_network_passes(self, fattree4):
        net = Network(fattree4)
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.engine.run_until(1.0)
        net.check_invariants()  # must not raise

    def test_corrupted_counter_detected(self, fattree4):
        net = Network(fattree4)
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.engine.run_until(1.0)
        # Sabotage a counter the way a buggy scheduler extension might.
        key = next(iter(net._link_total))
        net._link_total[key] += 1
        with pytest.raises(SimulationError):
            net.check_invariants()

    def test_negative_bytes_detected(self, fattree4):
        net = Network(fattree4)
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        flow.remaining_bytes = -5.0
        with pytest.raises(SimulationError):
            net.check_invariants()


def two_agg_spec(**overrides):
    defaults = dict(
        cores=["c0"],
        aggs={"a0": 0, "a1": 0},
        tors={"t0": 0, "t1": 0},
        hosts={"h0": "t0", "h1": "t1"},
        core_agg_links=[("c0", "a0"), ("c0", "a1")],
        agg_tor_links=[("a0", "t0"), ("a0", "t1"), ("a1", "t0"), ("a1", "t1")],
    )
    defaults.update(overrides)
    return TopologySpec(**defaults)


class TestCustomTopology:
    def test_builds_and_validates(self):
        topo = build_custom(two_agg_spec())
        assert topo.hosts() == ["h0", "h1"]
        assert len(topo.equal_cost_paths("t0", "t1")) == 2

    def test_full_stack_works_on_custom(self):
        """Addressing, switch tables, and forwarding all work unchanged."""
        topo = build_custom(two_agg_spec())
        addressing = HierarchicalAddressing(topo)
        codec = PathCodec(addressing)
        fabric = SwitchFabric(addressing)
        for path in topo.equal_cost_paths("t0", "t1"):
            src_addr, dst_addr = codec.encode("h0", "h1", path)
            assert fabric.forward_trace("h0", src_addr, dst_addr) == ("h0",) + path + ("h1",)

    def test_simulation_on_custom(self):
        topo = build_custom(two_agg_spec(link_bandwidth_bps=100 * MBPS))
        net = Network(topo)
        path = topo.equal_cost_paths("t0", "t1")[0]
        net.start_flow("h0", "h1", 10 * MB, [FlowComponent(("h0",) + path + ("h1",))])
        net.engine.run_until_idle()
        assert net.records[0].fct == pytest.approx(0.8)

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            build_custom(two_agg_spec(hosts={"a0": "t0"}))

    def test_unknown_wiring_rejected(self):
        with pytest.raises(TopologyError):
            build_custom(two_agg_spec(core_agg_links=[("c0", "ghost")]))
        with pytest.raises(TopologyError):
            build_custom(two_agg_spec(hosts={"h0": "ghost"}))

    def test_disconnected_layer_rejected(self):
        # a1 has no ToR links -> validate() fails.
        with pytest.raises(TopologyError):
            build_custom(two_agg_spec(agg_tor_links=[("a0", "t0"), ("a0", "t1")]))

    def test_link_overrides(self):
        spec = two_agg_spec(
            link_bandwidth_bps=GBPS,
            link_overrides={("a0", "t0"): 100 * MBPS},
        )
        topo = build_custom(spec)
        assert topo.link("a0", "t0").bandwidth_bps == 100 * MBPS
        assert topo.link("a0", "t1").bandwidth_bps == GBPS

    def test_host_bandwidth_layer_default(self):
        topo = build_custom(two_agg_spec(host_bandwidth_bps=100 * MBPS))
        assert topo.link("h0", "t0").bandwidth_bps == 100 * MBPS
        assert topo.link("c0", "a0").bandwidth_bps == GBPS
