"""Ablation: monitor query interval (paper §3.1 sets 1 s).

Faster polling gives fresher BoNF state at proportionally higher probe
cost; very slow polling leaves schedulers acting on stale state.
"""

from repro.experiments.figures import ablation_query_interval
from conftest import run_once


def test_ablation_query(benchmark, save_output):
    output = run_once(
        benchmark, ablation_query_interval, intervals_s=(0.5, 1.0, 5.0), duration_s=90.0
    )
    save_output(output)
    rows = sorted(output.rows, key=lambda r: r["query_interval_s"])
    # Probe traffic scales inversely with the interval.
    assert rows[0]["control_kb_per_s"] > rows[-1]["control_kb_per_s"] * 2
    # Performance stays in a sane band across the sweep.
    fcts = [r["mean_fct_s"] for r in rows]
    assert max(fcts) / min(fcts) < 1.5
