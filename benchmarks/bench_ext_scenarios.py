"""Extension: adversarial scenarios — threshold vs predictive detection.

Ablates the elephant detector on the two adversarial scenario classes
from ``repro.workloads.scenarios`` at p=16 (1024 hosts):

* **incast** — many-to-one barrier bursts into a handful of targets;
* **storm** — stride traffic under a rolling failure storm (three
  fail/restore waves over random switch cables).

Each scenario runs DARD twice: with the paper's 10 s age-threshold
detector and with the EWMA predictive classifier
(``Network(elephant_detector="predictive")``). The gate is detection
latency: the predictive detector must promote at least some elephants
*early* (before the age threshold) and its mean promotion age must land
strictly under ``elephant_age_s`` — while generating the byte-identical
workload (same seed, same arrival stream, same flow count).

Knobs are env-overridable for CI's short budget:
``BENCH_EXT_SCENARIOS_P`` (fat-tree p, default 16),
``BENCH_EXT_SCENARIOS_DURATION`` (sim-s of arrivals),
``BENCH_EXT_SCENARIOS_RATE`` (arrivals/host/s) and
``BENCH_EXT_SCENARIOS_DRAIN`` (post-arrival drain cap). The ablation
rows land in ``benchmarks/results/BENCH_ext_scenarios.json``.
"""

import json
import os
import pathlib

from repro.common.rng import RngStreams
from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.figures import ExperimentOutput
from repro.topology import build_topology
from repro.workloads import FailureStormScenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

P = int(os.environ.get("BENCH_EXT_SCENARIOS_P", "16"))
DURATION_S = float(os.environ.get("BENCH_EXT_SCENARIOS_DURATION", "12"))
RATE = float(os.environ.get("BENCH_EXT_SCENARIOS_RATE", "0.02"))
DRAIN_S = float(os.environ.get("BENCH_EXT_SCENARIOS_DRAIN", "240"))


def _topology_params():
    return {"p": P, "link_bandwidth_bps": 100 * MBPS}


def _storm_events():
    storm = FailureStormScenario(
        start_s=2.0,
        wave_interval_s=max(1.0, DURATION_S / 4),
        waves=3,
        cables_per_wave=2,
        outage_s=max(1.0, DURATION_S / 5),
    )
    return storm.link_events(
        build_topology("fattree", **_topology_params()),
        RngStreams(17).stream("storm"),
    )


def _scenario_kwargs(kind):
    if kind == "incast":
        return dict(
            pattern="incast",
            pattern_params={"targets": max(1, P // 4)},
            arrival="incast-barrier",
            arrival_params={
                "period_s": max(0.5, DURATION_S / 6),
                "senders_per_burst": P,
            },
            link_events=(),
        )
    return dict(
        pattern="stride",
        arrival="poisson",
        arrival_params={},
        link_events=_storm_events(),
    )


def _run(kind, detector):
    network_box = []
    config = ScenarioConfig(
        topology="fattree",
        topology_params=_topology_params(),
        scheduler="dard",
        arrival_rate_per_host=RATE,
        duration_s=DURATION_S,
        # The paper's elephants: 128 MB is > 10 s serialized even on an
        # uncontended 100 Mbps path, so every flow is a true elephant and
        # detection latency is the only variable.
        flow_size_bytes=128 * MB,
        seed=23,
        drain_limit_s=DRAIN_S,
        network_params=(
            {} if detector == "threshold" else {"elephant_detector": detector}
        ),
        **_scenario_kwargs(kind),
    )
    result = run_scenario(config, instrument=network_box.append)
    network = network_box[0]
    stats = network.perf_stats()
    return {
        "scenario": kind,
        "detector": detector,
        "flows_generated": result.flows_generated,
        "flows": len(result.records),
        # None (JSON null), not NaN, when the short-budget run completes
        # nothing — NaN is not valid JSON and breaks artifact consumers.
        "mean_fct_s": result.mean_fct if result.records else None,
        "peak_elephants": result.peak_elephants,
        "dard_shifts": result.dard_shifts,
        "elephant_age_s": network.elephant_age_s,
        "det_early_promotions": stats.get("det_early_promotions", 0.0),
        "det_fallback_promotions": stats.get("det_fallback_promotions", 0.0),
        "det_mean_detection_age_s": stats.get("det_mean_detection_age_s", 0.0),
    }


def _run_ablation():
    rows = []
    for kind in ("incast", "storm"):
        for detector in ("threshold", "predictive"):
            rows.append(_run(kind, detector))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ext_scenarios.json").write_text(
        json.dumps({"experiment": "ext_scenarios", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "ext_scenarios",
        f"p={P} incast + failure storm: threshold vs predictive detection",
        rows=rows,
    )


def test_ext_scenarios(benchmark, save_output):
    output = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    save_output(output)
    by_key = {(row["scenario"], row["detector"]): row for row in output.rows}
    for kind in ("incast", "storm"):
        threshold = by_key[(kind, "threshold")]
        predictive = by_key[(kind, "predictive")]
        # Same seed, same arrival stream: detection must not change the
        # generated workload, only how fast elephants are recognized.
        assert predictive["flows_generated"] == threshold["flows_generated"], kind
        # The predictor makes early calls on these heavy flows...
        assert predictive["det_early_promotions"] > 0, kind
        # ...and its mean promotion age beats the age threshold, which by
        # construction cannot promote before elephant_age_s.
        assert (
            predictive["det_mean_detection_age_s"]
            < predictive["elephant_age_s"]
        ), kind
