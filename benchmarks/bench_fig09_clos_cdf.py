"""Figure 9: FCT CDFs on the Clos network, all four schedulers.

Paper shape (D=16, here D=8): under stride DARD improves transfer time
considerably over ECMP with the centralized scheduler within ~10%; under
staggered DARD still explores path diversity and improves.
"""

from repro.experiments.figures import fig9_clos_cdf
from conftest import run_once


def test_fig9_clos_cdf(benchmark, save_output):
    output = run_once(benchmark, fig9_clos_cdf, duration_s=60.0)
    save_output(output)
    mean = {
        (row["pattern"], row["scheduler"]): row["mean_fct_s"] for row in output.rows
    }
    assert mean[("stride", "dard")] < mean[("stride", "ecmp")]
    assert mean[("stride", "dard")] <= mean[("stride", "hedera")] * 1.15
    # DARD never trails ECMP materially on any pattern.
    for pattern in ("random", "staggered", "stride"):
        assert mean[(pattern, "dard")] <= mean[(pattern, "ecmp")] * 1.05
