"""Periodic flow-level Valiant Load Balancing (the paper's pVLB, §4.2).

Plain flow-level VLB forwards each flow through a random core (random
aggregation pair in a Clos network) and, like ECMP, can strand elephants on
a collided path forever. The paper therefore evaluates a modified version
that re-picks a random path for every flow each ``repick_interval_s``
(10 s). The periodic switch avoids permanent collisions but costs a window
of retransmitted bytes per switch — which is why pVLB ends up performing
close to ECMP overall (§4.3.2).
"""

from __future__ import annotations

from typing import List

from repro.scheduling.base import Scheduler, SchedulerContext
from repro.simulator.flows import Flow, FlowComponent

DEFAULT_REPICK_INTERVAL_S = 10.0


class PeriodicVlbScheduler(Scheduler):
    """VLB with periodic random path re-selection."""

    name = "vlb"

    def __init__(self, repick_interval_s: float = DEFAULT_REPICK_INTERVAL_S) -> None:
        super().__init__()
        self.repick_interval_s = repick_interval_s

    def attach(self, ctx: SchedulerContext) -> None:
        super().attach(ctx)
        ctx.engine.schedule_every(self.repick_interval_s, self._repick_all)
        ctx.network.link_failed_listeners.append(self._on_link_failed)

    def _on_link_failed(self, u: str, v: str) -> None:
        rng = self.ctx.rng
        self.evacuate_failed_link(u, v, lambda paths: paths[int(rng.integers(len(paths)))])

    def _random_path(self, src: str, dst: str) -> FlowComponent:
        paths = self.alive_paths(src, dst)
        index = int(self.ctx.rng.integers(len(paths)))
        return self.component_for(src, dst, paths[index])

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        return [self._random_path(src, dst)]

    def _repick_all(self) -> None:
        """Give every live multi-path flow a fresh random path."""
        network = self.ctx.network
        for flow in network.active_flows():
            paths = self.paths_between(flow.src, flow.dst)
            if len(paths) < 2:
                continue
            component = self._random_path(flow.src, flow.dst)
            if component.path == flow.components[0].path:
                continue  # same draw; no actual switch happened
            network.reroute_flow(flow, [component])
