"""On-demand path-state monitoring (paper §2.4).

A monitor tracks the BoNF of every equal-cost path between one source ToR
and one destination ToR. Instead of flooding probes along each path, it
uses *Path State Assembling*: it queries a fixed set of switches for their
per-egress-port state — (1) the source ToR, (2) the aggregation switches
above it, (3) the core switches, (4) the aggregation switches above the
destination ToR — and assembles the replies into per-path bottleneck
states. That switch set covers every equal-cost path, so the query cost is
bounded by topology size, not flow count (the crux of the Fig. 15
overhead comparison).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.scheduling.messages import MessageLedger, MessageSizes
from repro.simulator.network import Network
from repro.topology.multirooted import MultiRootedTopology, SwitchPath
from repro.core.bonf import PathState


def switches_to_query(
    topology: MultiRootedTopology, src_tor: str, dst_tor: str
) -> Set[str]:
    """The switch set a monitor polls (paper §2.4.2).

    For inter-pod pairs this is the paper's four groups. For intra-pod
    pairs the equal-cost paths only cross the shared aggregation switches,
    so only the source ToR and those switches need polling.
    """
    paths = topology.equal_cost_paths(src_tor, dst_tor)
    if len(paths[0]) == 5:
        switches: Set[str] = {src_tor}
        switches.update(topology.up_neighbors(src_tor))
        switches.update(topology.cores())
        switches.update(topology.up_neighbors(dst_tor))
        return switches
    switches = {src_tor}
    for path in paths:
        switches.update(path[1:-1])
    return switches


class PathMonitor:
    """Tracks path states between one (source ToR, destination ToR) pair.

    Maintains the paper's two vectors: ``path_states`` (PV), the bottleneck
    state of each equal-cost path, and — via the owning daemon — FV, the
    number of elephant flows the host itself sends along each path.
    """

    def __init__(
        self,
        network: Network,
        src_tor: str,
        dst_tor: str,
        ledger: MessageLedger,
        message_sizes: MessageSizes = MessageSizes(),
    ) -> None:
        self.network = network
        self.src_tor = src_tor
        self.dst_tor = dst_tor
        self.ledger = ledger
        self.message_sizes = message_sizes
        self.paths: List[SwitchPath] = network.topology.equal_cost_paths(src_tor, dst_tor)
        #: path -> position lookup; path_index() runs once per elephant per
        #: scheduling round, so an O(P) list scan adds up at scale.
        self._path_index: dict = {tuple(p): i for i, p in enumerate(self.paths)}
        self.query_switches = switches_to_query(network.topology, src_tor, dst_tor)
        # Intern every monitored path's switch-switch link ids once, at
        # registration: each polling round is then a single vectorized
        # batch_path_state over one CSR instead of per-path dict walks.
        # Same-ToR pairs have the single length-1 path with no links to
        # monitor; they are excluded from the CSR and answered statically.
        path_link_ids = [
            network.index_switch_path(path) if len(path) > 1 else None
            for path in self.paths
        ]
        self._monitored: List[int] = [
            i for i, ids in enumerate(path_link_ids) if ids is not None
        ]
        monitored_ids = [path_link_ids[i] for i in self._monitored]
        if monitored_ids:
            lengths = np.fromiter(
                (ids.size for ids in monitored_ids),
                dtype=np.intp,
                count=len(monitored_ids),
            )
            self._csr_indptr = np.zeros(len(monitored_ids) + 1, dtype=np.intp)
            np.cumsum(lengths, out=self._csr_indptr[1:])
            self._csr_indices = np.concatenate(monitored_ids)
        else:
            self._csr_indptr = np.zeros(1, dtype=np.intp)
            self._csr_indices = np.empty(0, dtype=np.intp)
        self.path_states: List[PathState] = [
            PathState(bandwidth_bps=0.0, flow_numbers=0) for _ in self.paths
        ]
        self.queries_sent = 0

    def query(self) -> List[PathState]:
        """One polling round: query switches, assemble per-path states."""
        # Message accounting: one query out and one reply back per switch.
        n = len(self.query_switches)
        self.ledger.record("dard_query", self.message_sizes.dard_query, n)
        self.ledger.record("dard_reply", self.message_sizes.dard_reply, n)
        self.queries_sent += n
        # Same-ToR paths have no switch-switch link to monitor.
        states = [
            PathState(bandwidth_bps=float("inf"), flow_numbers=0) for _ in self.paths
        ]
        if self._monitored:
            link_states = self.network.batch_path_state(
                self._csr_indices, self._csr_indptr
            )
            for position, link_state in zip(self._monitored, link_states):
                states[position] = PathState(
                    bandwidth_bps=link_state.bandwidth_bps,
                    flow_numbers=link_state.elephant_flows,
                )
        self.path_states = states
        return states

    def path_index(self, switch_path: SwitchPath) -> int:
        """Which monitored path a flow's current route corresponds to."""
        try:
            return self._path_index[tuple(switch_path)]
        except KeyError:
            raise KeyError(
                f"path {switch_path!r} is not an equal-cost path between "
                f"{self.src_tor!r} and {self.dst_tor!r}"
            ) from None
