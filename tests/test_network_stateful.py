"""Stateful property testing of the Network (hypothesis RuleBasedStateMachine).

Drives random interleavings of flow starts, reroutes, link failures,
restores, and time advances against a p=4 fat-tree, checking global
invariants after every step:

* link flow-counters always match a from-scratch recount;
* no link is ever allocated beyond capacity;
* byte conservation: remaining + delivered == size + retransmitted;
* completed flows are never over- nor under-delivered;
* failed links carry zero allocated rate.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import settings

from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree

SWITCH_CABLES = None  # populated lazily; FatTree construction is deterministic


def _switch_cables(topo):
    cables = []
    for link in topo.links():
        if topo.node(link.u).kind.is_switch and topo.node(link.v).kind.is_switch:
            cables.append((link.u, link.v))
    return sorted(cables)


class NetworkMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        self.net = Network(self.topo)
        self.hosts = sorted(self.topo.hosts())
        self.cables = _switch_cables(self.topo)
        self.started = []

    # -- rules -----------------------------------------------------------------

    @rule(
        src_i=st.integers(0, 15),
        dst_i=st.integers(0, 15),
        size_mb=st.floats(1.0, 64.0),
        path_i=st.integers(0, 3),
    )
    def start_flow(self, src_i, dst_i, size_mb, path_i):
        src, dst = self.hosts[src_i], self.hosts[dst_i]
        if src == dst:
            return
        paths = self.topo.equal_cost_paths(self.topo.tor_of(src), self.topo.tor_of(dst))
        path = paths[path_i % len(paths)]
        flow = self.net.start_flow(
            src, dst, size_mb * MB,
            [FlowComponent(self.topo.host_path(src, dst, path))],
        )
        self.started.append(flow)

    @rule(flow_i=st.integers(0, 200), path_i=st.integers(0, 3))
    def reroute(self, flow_i, path_i):
        live = [f for f in self.started if f.active]
        if not live:
            return
        flow = live[flow_i % len(live)]
        paths = self.topo.equal_cost_paths(
            self.topo.tor_of(flow.src), self.topo.tor_of(flow.dst)
        )
        path = paths[path_i % len(paths)]
        self.net.reroute_flow(
            flow, [FlowComponent(self.topo.host_path(flow.src, flow.dst, path))]
        )

    @rule(cable_i=st.integers(0, 100))
    def fail_cable(self, cable_i):
        u, v = self.cables[cable_i % len(self.cables)]
        self.net.fail_link(u, v)

    @rule(cable_i=st.integers(0, 100))
    def restore_cable(self, cable_i):
        u, v = self.cables[cable_i % len(self.cables)]
        self.net.restore_link(u, v)

    @rule(dt=st.floats(0.1, 15.0))
    def advance(self, dt):
        self.net.engine.run_until(self.net.engine.now + dt)

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def link_counters_consistent(self):
        expected_total = {}
        expected_eleph = {}
        for flow in self.net.flows.values():
            seen = set()
            for component in flow.components:
                for link in component.links():
                    if link in seen:
                        continue
                    seen.add(link)
                    expected_total[link] = expected_total.get(link, 0) + 1
                    if flow.is_elephant:
                        expected_eleph[link] = expected_eleph.get(link, 0) + 1
        for link, count in self.net._link_total.items():
            assert count == expected_total.get(link, 0), link
        for link, count in self.net._link_elephants.items():
            assert count == expected_eleph.get(link, 0), link

    @invariant()
    def no_link_over_capacity(self):
        load = {}
        for flow in self.net.flows.values():
            for component, rate in zip(flow.components, flow.component_rates):
                for link in component.links():
                    load[link] = load.get(link, 0.0) + rate
        for link, total in load.items():
            assert total <= self.net.capacities[link] * (1 + 1e-6), link

    @invariant()
    def failed_links_carry_nothing(self):
        if not self.net.failed_links:
            return
        for flow in self.net.flows.values():
            for component, rate in zip(flow.components, flow.component_rates):
                if any(l in self.net.failed_links for l in component.links()):
                    assert rate == 0.0

    @invariant()
    def bytes_conserved(self):
        for flow in self.net.flows.values():
            assert flow.remaining_bytes >= 0.0
            # remaining never exceeds size plus retransmission inflation.
            assert flow.remaining_bytes <= flow.size_bytes + flow.retransmitted_bytes + 1.0

    @invariant()
    def completed_flows_fully_delivered(self):
        for record in self.net.records:
            assert record.end_time >= record.start_time
            assert record.size_bytes > 0


NetworkMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestNetworkStateful = NetworkMachine.TestCase
