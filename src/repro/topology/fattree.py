"""Fat-tree topology (Al-Fares et al., SIGCOMM 2008).

A ``p``-pod fat-tree built from ``p``-port switches:

* ``p`` pods, each with ``p/2`` ToR and ``p/2`` aggregation switches;
* ``(p/2)^2`` core switches; core ``(i, j)`` connects to aggregation
  switch ``i`` of every pod;
* each ToR serves ``p/2`` hosts, for ``p^3/4`` hosts total.

Any inter-pod host pair has exactly ``p^2/4`` equal-cost paths, one per
core; intra-pod pairs have ``p/2`` paths, one per aggregation switch.

Node naming: ``core_{i}_{j}``, ``agg_{pod}_{i}``, ``tor_{pod}_{i}``,
``h_{pod}_{tor}_{k}``.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.common.units import GBPS
from repro.topology.graph import Node, NodeKind
from repro.topology.multirooted import MultiRootedTopology


class FatTree(MultiRootedTopology):
    """A ``p``-pod fat-tree with uniform link bandwidth (1 Gbps default)."""

    def __init__(
        self,
        p: int = 4,
        link_bandwidth_bps: float = GBPS,
        host_bandwidth_bps: float = None,
        link_delay_s: float = 0.0001,
    ) -> None:
        if p < 2 or p % 2 != 0:
            raise TopologyError(f"fat-tree pod count must be a positive even number, got {p}")
        super().__init__()
        self.p = p
        self.link_bandwidth_bps = link_bandwidth_bps
        self.host_bandwidth_bps = (
            host_bandwidth_bps if host_bandwidth_bps is not None else link_bandwidth_bps
        )
        self._build(link_delay_s)
        self.validate()

    @property
    def radix(self) -> int:
        """Switch port count (equals the pod count in a fat-tree)."""
        return self.p

    @property
    def paths_per_inter_pod_pair(self) -> int:
        return (self.p // 2) ** 2

    def _build(self, delay: float) -> None:
        half = self.p // 2
        for i in range(half):
            for j in range(half):
                self.add_node(Node(f"core_{i}_{j}", NodeKind.CORE, pod=None, index=i * half + j))
        for pod in range(self.p):
            for i in range(half):
                self.add_node(Node(f"agg_{pod}_{i}", NodeKind.AGG, pod=pod, index=i))
                self.add_node(Node(f"tor_{pod}_{i}", NodeKind.TOR, pod=pod, index=i))
            for i in range(half):
                for j in range(half):
                    self.add_link(f"agg_{pod}_{i}", f"tor_{pod}_{j}", self.link_bandwidth_bps, delay)
            for t in range(half):
                for k in range(half):
                    host = f"h_{pod}_{t}_{k}"
                    self.add_node(Node(host, NodeKind.HOST, pod=pod, index=t * half + k))
                    self.add_link(host, f"tor_{pod}_{t}", self.host_bandwidth_bps, delay)
        for i in range(half):
            for j in range(half):
                for pod in range(self.p):
                    self.add_link(f"core_{i}_{j}", f"agg_{pod}_{i}", self.link_bandwidth_bps, delay)

    def __repr__(self) -> str:
        return f"FatTree(p={self.p}, hosts={len(self.hosts())})"
