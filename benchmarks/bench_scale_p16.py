"""Scale check: p=16 fat-tree (1024 hosts), the paper's middle ns-2 size.

The smaller fat-tree benches (p=4/8) carry the per-figure comparisons;
this one demonstrates the stack at four-digit host counts: DARD still
beats ECMP under stride while its per-flow stability bound holds, and the
whole simulation (including 1000+ host daemons polling monitors) completes
in minutes on a laptop.
"""

import json
import pathlib

import numpy as np

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, improvement, run_scenario
from repro.experiments.figures import ExperimentOutput

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _run_pair():
    base = dict(
        topology="fattree",
        topology_params={"p": 16, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=0.035,
        duration_s=40.0,
        flow_size_bytes=128 * MB,
        seed=1,
    )
    ecmp = run_scenario(ScenarioConfig(scheduler="ecmp", **base))
    dard = run_scenario(ScenarioConfig(scheduler="dard", **base))
    rows = [
        {
            "scheduler": name,
            "hosts": 1024,
            "flows": len(result.records),
            "mean_fct_s": result.mean_fct,
            "p90_switches": float(np.percentile(result.path_switches, 90))
            if result.path_switches
            else 0.0,
        }
        for name, result in [("ecmp", ecmp), ("dard", dard)]
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scale_p16.json").write_text(
        json.dumps({"experiment": "scale_p16", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "scale_p16",
        "p=16 fat-tree (1024 hosts), stride: DARD vs ECMP at scale",
        rows=rows,
        notes=f"improvement: {improvement(ecmp.mean_fct, dard.mean_fct):.1%}",
    )


def test_scale_p16(benchmark, save_output):
    output = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    save_output(output)
    by_sched = {row["scheduler"]: row for row in output.rows}
    gain = improvement(by_sched["ecmp"]["mean_fct_s"], by_sched["dard"]["mean_fct_s"])
    assert gain > 0.04
    # Stability holds at scale: 90th percentile of switches stays tiny
    # against the 64 available paths.
    assert by_sched["dard"]["p90_switches"] <= 4
