"""DET002 bad fixture: global random-module state."""

import random


def jitter_s():
    """Depends on interpreter-global RNG state — not seed-reproducible."""
    return random.random() * 0.5
