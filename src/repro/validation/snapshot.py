"""Golden-trace regression snapshots.

Captures a digest of everything a scenario run settles on — the FCT
distribution, path-switch counts, per-link peak utilization, allocator
convergence rounds, and best-response dynamics step counts — for a fixed
set of seeded scenarios, and compares future runs against the stored
golden file. Any behavioral drift (an allocator change that moves a rate
by one part in a million, a scheduler change that shifts one flow) shows
up as a digest mismatch, turning "did this refactor change behavior?"
into a one-command question.

Modes: ``store`` writes the golden file, ``compare`` diffs a fresh
capture against it, ``update`` is store-over-existing (use after an
*intentional* behavior change, and say why in the commit).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

#: Progress callback used by the golden capture/compare entry points.
ProgressFn = Optional[Callable[[str], None]]

from repro.common.rng import RngStreams
from repro.common.units import MB, MBPS
from repro.experiments.runner import ScenarioConfig, run_scenario

PathLike = Union[str, Path]

#: Default location, relative to the repo root (where pytest and the CLI
#: run from).
DEFAULT_GOLDEN_PATH = Path("tests") / "goldens" / "golden_traces.json"

_ROUND = 6  # microsecond / sub-ppm resolution: below any real drift

#: The golden scenario set: small, fast, deterministic, covering three
#: schedulers and two topology families. Pinned to the full (reference)
#: reallocation mode: the incremental mode reproduces every rate and FCT
#: bit-for-bit but counts water-filling rounds per component, so its
#: ``filling_iterations`` legitimately differs when symmetric ties span
#: components. :func:`compare_goldens_incremental` re-runs these configs
#: with ``incremental_realloc=True`` and diffs against the same stored
#: file, exempting only that field.
GOLDEN_SCENARIOS: Dict[str, ScenarioConfig] = {
    "fattree_ecmp_stride": ScenarioConfig(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="ecmp",
        arrival_rate_per_host=0.05,
        duration_s=20.0,
        flow_size_bytes=16 * MB,
        seed=7,
        network_params={"incremental_realloc": False},
    ),
    "fattree_dard_random": ScenarioConfig(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="random",
        scheduler="dard",
        arrival_rate_per_host=0.05,
        duration_s=20.0,
        flow_size_bytes=16 * MB,
        seed=11,
        network_params={"incremental_realloc": False},
    ),
    "clos_vlb_staggered": ScenarioConfig(
        topology="clos",
        topology_params={
            "d_i": 4,
            "d_a": 4,
            "hosts_per_tor": 2,
            "link_bandwidth_bps": 100 * MBPS,
        },
        pattern="staggered",
        scheduler="vlb",
        arrival_rate_per_host=0.05,
        duration_s=20.0,
        flow_size_bytes=16 * MB,
        seed=3,
        network_params={"incremental_realloc": False},
    ),
}

#: Golden fields the incremental cross-check ignores: per-component fills
#: count symmetric cross-component tie rounds separately, so convergence
#: round totals differ while every rate (and thus every FCT) is identical.
_INCREMENTAL_EXEMPT_FIELDS = ("filling_iterations",)


def _digest(values: Iterable[float]) -> str:
    """Stable content hash of a sequence of rounded numbers."""
    payload = ",".join(repr(round(float(v), _ROUND)) for v in values)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def capture_scenario(config: ScenarioConfig) -> dict:
    """Run one scenario and distill its golden trace."""
    network_box = []
    result = run_scenario(config, instrument=network_box.append)
    network = network_box[0]
    fcts = sorted(result.fcts)
    stats = network.perf_stats()
    peaks = network.peak_utilization_summary()
    return {
        "flows_generated": result.flows_generated,
        "flows_completed": len(result.records),
        "fct_mean_s": round(result.mean_fct, _ROUND) if result.records else None,
        "fct_p50_s": round(_percentile(fcts, 0.50), _ROUND) if fcts else None,
        "fct_p99_s": round(_percentile(fcts, 0.99), _ROUND) if fcts else None,
        "fct_digest": _digest(fcts),
        "path_switches_total": int(sum(result.path_switches)),
        "dard_shifts": result.dard_shifts,
        "peak_elephants": result.peak_elephants,
        "peak_util_max": round(peaks["max"], _ROUND),
        "peak_util_mean": round(peaks["mean"], _ROUND),
        "links_saturated": peaks["saturated"],
        "realloc_calls": int(stats["realloc_calls"]),
        "filling_iterations": int(stats["filling_iterations"]),
    }


def capture_dynamics() -> dict:
    """Golden for Theorem-2 convergence: steps-to-Nash on a seeded game."""
    from repro.gametheory import run_best_response_dynamics
    from repro.gametheory.study import random_game_on
    from repro.topology import FatTree

    rng = RngStreams(5).stream("golden-dynamics")
    game = random_game_on(FatTree(p=4, link_bandwidth_bps=100 * MBPS), 12, rng)
    result = run_best_response_dynamics(game)
    return {
        "converged": result.converged,
        "steps_to_nash": result.num_steps,
        "final_strategy_digest": _digest(result.final),
    }


def capture_allocator() -> dict:
    """Golden for the allocator: rates + filling rounds on a seeded instance."""
    from repro.simulator.maxmin import _intern_demands, maxmin_allocate_indexed
    from repro.validation.oracles import random_allocation_case

    demands, capacities = random_allocation_case(random.Random(42))
    indices, indptr, weights, caps = _intern_demands(demands, capacities)
    rates, iterations = maxmin_allocate_indexed(indices, indptr, weights, caps)
    return {
        "demands": len(demands),
        "filling_iterations": int(iterations),
        "rates_sum": round(float(rates.sum()), _ROUND),
        "rates_digest": _digest(rates.tolist()),
    }


def collect_goldens(progress: ProgressFn = None) -> dict:
    """Run every golden capture and assemble the snapshot document."""
    scenarios = {}
    for name, config in GOLDEN_SCENARIOS.items():
        if progress is not None:
            progress(f"golden: capturing {name} ...")
        scenarios[name] = capture_scenario(config)
    return {
        "format": 1,
        "scenarios": scenarios,
        "dynamics": capture_dynamics(),
        "allocator": capture_allocator(),
    }


def store_goldens(path: PathLike = DEFAULT_GOLDEN_PATH, progress: ProgressFn = None) -> dict:
    """Capture and write the golden file; returns the document."""
    document = collect_goldens(progress=progress)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def _diff(prefix: str, golden: Any, current: Any, out: List[str]) -> None:
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current)):
            if key not in golden:
                out.append(f"{prefix}{key}: unexpected new key (value {current[key]!r})")
            elif key not in current:
                out.append(f"{prefix}{key}: missing (golden {golden[key]!r})")
            else:
                _diff(f"{prefix}{key}.", golden[key], current[key], out)
        return
    if isinstance(golden, float) and isinstance(current, float):
        if not math.isclose(golden, current, rel_tol=1e-6, abs_tol=1e-6):
            out.append(f"{prefix[:-1]}: {current!r} != golden {golden!r}")
        return
    if golden != current:
        out.append(f"{prefix[:-1]}: {current!r} != golden {golden!r}")


def compare_goldens(
    path: PathLike = DEFAULT_GOLDEN_PATH,
    document: Optional[dict] = None,
    progress: ProgressFn = None,
) -> List[str]:
    """Diff a fresh capture against the stored golden file.

    Returns a list of human-readable mismatches (empty = clean). A
    missing golden file is reported as one mismatch telling the caller to
    run store/update first.
    """
    path = Path(path)
    if not path.exists():
        return [f"golden file {path} does not exist; run with --golden update to create it"]
    with open(path) as handle:
        golden = json.load(handle)
    if document is None:
        document = collect_goldens(progress=progress)
    mismatches: List[str] = []
    _diff("", golden, document, mismatches)
    return mismatches


def compare_goldens_incremental(
    path: PathLike = DEFAULT_GOLDEN_PATH,
    progress: ProgressFn = None,
) -> List[str]:
    """Re-run the golden scenarios incrementally against the stored file.

    The component-scoped reallocator's bit-exactness claim, enforced
    end-to-end: every scenario digest (FCTs, path switches, utilization
    peaks, realloc counts) must match the full-mode golden exactly, with
    only :data:`_INCREMENTAL_EXEMPT_FIELDS` excused.
    """
    path = Path(path)
    if not path.exists():
        return [f"golden file {path} does not exist; run with --golden update to create it"]
    with open(path) as handle:
        golden = json.load(handle)
    mismatches: List[str] = []
    for name, config in GOLDEN_SCENARIOS.items():
        if progress is not None:
            progress(f"golden[incremental]: capturing {name} ...")
        flipped = dataclasses.replace(
            config, network_params={**config.network_params, "incremental_realloc": True}
        )
        current = capture_scenario(flipped)
        want = dict(golden["scenarios"][name])
        for exempt in _INCREMENTAL_EXEMPT_FIELDS:
            want.pop(exempt, None)
            current.pop(exempt, None)
        _diff(f"scenarios[incremental].{name}.", want, current, mismatches)
    return mismatches


def compare_goldens_settle_reference(
    path: PathLike = DEFAULT_GOLDEN_PATH,
    progress: ProgressFn = None,
) -> List[str]:
    """Re-run the golden scenarios in scalar settle mode against the file.

    The columnar FlowStore's bit-exactness claim, enforced end-to-end:
    the goldens are captured in the default ``settle_mode="store"``, and
    the preserved scalar reference loops must reproduce every scenario
    digest exactly — no exempt fields, since the settle path affects no
    counters differently between modes.
    """
    path = Path(path)
    if not path.exists():
        return [f"golden file {path} does not exist; run with --golden update to create it"]
    with open(path) as handle:
        golden = json.load(handle)
    mismatches: List[str] = []
    for name, config in GOLDEN_SCENARIOS.items():
        if progress is not None:
            progress(f"golden[settle-reference]: capturing {name} ...")
        flipped = dataclasses.replace(
            config, network_params={**config.network_params, "settle_mode": "reference"}
        )
        current = capture_scenario(flipped)
        _diff(f"scenarios[settle-reference].{name}.", golden["scenarios"][name],
              current, mismatches)
    return mismatches
