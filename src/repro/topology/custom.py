"""Build a custom multi-rooted tree from a declarative specification.

The three built-in families cover the paper; downstream users often need
"my datacenter, except...". A :class:`TopologySpec` declares layer members
and wiring explicitly, producing a validated
:class:`~repro.topology.multirooted.MultiRootedTopology` that works with
the full stack — addressing, switch tables, DARD, every scheduler.

Example
-------
>>> from repro.topology.custom import TopologySpec, build_custom
>>> spec = TopologySpec(
...     cores=["c0"],
...     aggs={"a0": 0, "a1": 0},
...     tors={"t0": 0, "t1": 0},
...     hosts={"h0": "t0", "h1": "t1"},
...     core_agg_links=[("c0", "a0"), ("c0", "a1")],
...     agg_tor_links=[("a0", "t0"), ("a0", "t1"), ("a1", "t0"), ("a1", "t1")],
... )
>>> topo = build_custom(spec)
>>> len(topo.equal_cost_paths("t0", "t1"))
2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import TopologyError
from repro.common.units import GBPS
from repro.topology.graph import Node, NodeKind
from repro.topology.multirooted import MultiRootedTopology


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a multi-rooted tree.

    * ``cores`` — core/intermediate switch names;
    * ``aggs`` / ``tors`` — name -> pod index;
    * ``hosts`` — host name -> its ToR;
    * ``core_agg_links`` / ``agg_tor_links`` — explicit wiring;
    * bandwidths default to 1 Gbps everywhere, overridable per layer or
      per individual cable via ``link_overrides``.
    """

    cores: List[str]
    aggs: Dict[str, int]
    tors: Dict[str, int]
    hosts: Dict[str, str]
    core_agg_links: List[Tuple[str, str]]
    agg_tor_links: List[Tuple[str, str]]
    link_bandwidth_bps: float = GBPS
    host_bandwidth_bps: Optional[float] = None
    link_delay_s: float = 0.0001
    #: (u, v) -> bandwidth overriding the layer default for that cable.
    link_overrides: Dict[Tuple[str, str], float] = field(default_factory=dict)


class CustomTopology(MultiRootedTopology):
    """A multi-rooted tree built from a :class:`TopologySpec`."""

    def __init__(self, spec: TopologySpec) -> None:
        super().__init__()
        self.spec = spec
        self._build()
        self.validate()

    def _bandwidth(self, u: str, v: str, default: float) -> float:
        overrides = self.spec.link_overrides
        return overrides.get((u, v), overrides.get((v, u), default))

    def _build(self) -> None:
        spec = self.spec
        names = list(spec.cores) + list(spec.aggs) + list(spec.tors) + list(spec.hosts)
        if len(names) != len(set(names)):
            raise TopologyError("spec contains duplicate node names")
        for index, core in enumerate(spec.cores):
            self.add_node(Node(core, NodeKind.CORE, pod=None, index=index))
        for index, (agg, pod) in enumerate(spec.aggs.items()):
            self.add_node(Node(agg, NodeKind.AGG, pod=pod, index=index))
        for index, (tor, pod) in enumerate(spec.tors.items()):
            self.add_node(Node(tor, NodeKind.TOR, pod=pod, index=index))
        for index, (host, tor) in enumerate(spec.hosts.items()):
            if tor not in spec.tors:
                raise TopologyError(f"host {host!r} names unknown ToR {tor!r}")
            pod = spec.tors[tor]
            self.add_node(Node(host, NodeKind.HOST, pod=pod, index=index))

        for core, agg in spec.core_agg_links:
            if core not in spec.cores or agg not in spec.aggs:
                raise TopologyError(f"core-agg link ({core!r}, {agg!r}) names unknown nodes")
            self.add_link(
                core, agg,
                self._bandwidth(core, agg, spec.link_bandwidth_bps),
                spec.link_delay_s,
            )
        for agg, tor in spec.agg_tor_links:
            if agg not in spec.aggs or tor not in spec.tors:
                raise TopologyError(f"agg-tor link ({agg!r}, {tor!r}) names unknown nodes")
            self.add_link(
                agg, tor,
                self._bandwidth(agg, tor, spec.link_bandwidth_bps),
                spec.link_delay_s,
            )
        host_bw = (
            spec.host_bandwidth_bps
            if spec.host_bandwidth_bps is not None
            else spec.link_bandwidth_bps
        )
        for host, tor in spec.hosts.items():
            self.add_link(host, tor, self._bandwidth(host, tor, host_bw), spec.link_delay_s)

    def __repr__(self) -> str:
        return (
            f"CustomTopology(cores={len(self.spec.cores)}, "
            f"tors={len(self.spec.tors)}, hosts={len(self.spec.hosts)})"
        )


def build_custom(spec: TopologySpec) -> CustomTopology:
    """Construct and validate a custom topology."""
    return CustomTopology(spec)
