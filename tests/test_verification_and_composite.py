"""Tests for fabric verification and composite/modulated workloads."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.addressing.prefix import Prefix
from repro.simulator import EventEngine
from repro.switches import SwitchFabric, audit_table_sizes, verify_fabric
from repro.topology import ClosNetwork, FatTree
from repro.workloads import (
    CompositePattern,
    LoadPhase,
    LoadProfile,
    ModulatedArrivalProcess,
    StaggeredPattern,
    StridePattern,
    WorkloadSpec,
)


class TestVerifyFabric:
    def test_fattree_fully_verifies(self, fattree4, fattree4_addressing, fattree4_fabric, fattree4_codec):
        report = verify_fabric(fattree4_fabric, fattree4_codec)
        assert report.ok
        # 16 hosts -> 120 unordered pairs, all within the default budget.
        assert report.pairs_checked == 120
        assert report.paths_checked > 120
        assert "OK" in report.render()

    def test_clos_fully_verifies(self, clos44, clos44_addressing, clos44_fabric):
        codec = PathCodec(clos44_addressing)
        report = verify_fabric(clos44_fabric, codec)
        assert report.ok

    def test_budget_respected(self, fattree4_fabric, fattree4_codec):
        report = verify_fabric(fattree4_fabric, fattree4_codec, max_pairs=10)
        assert report.pairs_checked == 10

    def test_corrupted_table_detected(self, fattree4):
        addressing = HierarchicalAddressing(fattree4)
        codec = PathCodec(addressing)
        fabric = SwitchFabric(addressing)
        # Sabotage: point one ToR's uphill chain at the wrong agg port.
        tor = fabric.switch("tor_0_0")
        entry = tor.uphill.entries()[0]
        wrong_port = next(
            p for p, n in tor.ports.items()
            if n.startswith("agg") and p != entry.port
        )
        tor.uphill._by_length[entry.prefix.length][entry.prefix.value] = wrong_port
        report = verify_fabric(fabric, codec)
        assert not report.ok
        # Misdirected packets dead-end at the wrong aggregation switch.
        assert any("routing error" in f for f in report.failures)

    def test_table_audit_by_role(self, fattree4_fabric):
        sizes = audit_table_sizes(fattree4_fabric)
        assert len(sizes) == 20  # every switch audited
        # Cores: downhill only.
        assert sizes["core_0_0"][1] == 0
        # All aggs identical by symmetry.
        agg_sizes = {v for k, v in sizes.items() if k.startswith("agg")}
        assert len(agg_sizes) == 1


class TestCompositePattern:
    def test_mixture_proportions(self, fattree4):
        rng = np.random.default_rng(0)
        pattern = CompositePattern(
            [StaggeredPattern(fattree4, tor_p=1.0, pod_p=0.0), StridePattern(fattree4)],
            weights=[0.5, 0.5],
        )
        same_tor = 0
        n = 2000
        for _ in range(n):
            dst = pattern.pick_dst("h_0_0_0", rng)
            if fattree4.tor_of(dst) == "tor_0_0":
                same_tor += 1
        # Half the draws come from the always-same-ToR pattern.
        assert same_tor / n == pytest.approx(0.5, abs=0.05)

    def test_validation(self, fattree4, clos44):
        stride = StridePattern(fattree4)
        with pytest.raises(ConfigurationError):
            CompositePattern([], [])
        with pytest.raises(ConfigurationError):
            CompositePattern([stride], [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            CompositePattern([stride], [-1.0])
        with pytest.raises(ConfigurationError):
            CompositePattern([stride, StridePattern(clos44)], [0.5, 0.5])


class TestLoadProfile:
    def test_multiplier_lookup(self):
        profile = LoadProfile([LoadPhase(10.0, 0.5), LoadPhase(20.0, 2.0)])
        assert profile.multiplier_at(0.0) == 0.5
        assert profile.multiplier_at(10.0) == 2.0
        assert profile.multiplier_at(25.0) == 2.0  # last phase extends

    def test_step_builder(self):
        profile = LoadProfile.step(low=1.0, high=3.0, switch_at_s=30.0, end_s=60.0)
        assert profile.multiplier_at(29.9) == 1.0
        assert profile.multiplier_at(30.1) == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile([])
        with pytest.raises(ConfigurationError):
            LoadProfile([LoadPhase(10.0, 1.0), LoadPhase(5.0, 1.0)])
        with pytest.raises(ConfigurationError):
            LoadPhase(10.0, -0.5)
        with pytest.raises(ConfigurationError):
            LoadPhase(0.0, 1.0)


class TestModulatedArrivals:
    def _count_arrivals(self, profile, duration=100.0, rate=0.5):
        engine = EventEngine()
        topo = FatTree(p=4)
        pattern = StridePattern(topo)
        times = []
        process = ModulatedArrivalProcess(
            engine=engine,
            pattern=pattern,
            spec=WorkloadSpec(arrival_rate_per_host=rate, duration_s=duration),
            sink=lambda s, d, b: times.append(engine.now),
            rng=np.random.default_rng(9),
            profile=profile,
        )
        process.start()
        engine.run_until_idle()
        return times

    def test_step_up_increases_rate(self):
        profile = LoadProfile.step(low=0.5, high=2.0, switch_at_s=50.0, end_s=100.0)
        times = self._count_arrivals(profile)
        early = sum(1 for t in times if t < 50.0)
        late = sum(1 for t in times if t >= 50.0)
        # 4x the rate in the second half -> roughly 4x the arrivals.
        assert late > 2.5 * early

    def test_idle_phase_produces_nothing(self):
        profile = LoadProfile([LoadPhase(50.0, 0.0), LoadPhase(100.0, 1.0)])
        times = self._count_arrivals(profile)
        assert all(t >= 50.0 for t in times)
        assert times  # the active phase did produce arrivals

    def test_fully_idle_profile(self):
        profile = LoadProfile([LoadPhase(200.0, 0.0)])
        assert self._count_arrivals(profile) == []


class TestSeedStability:
    """Composite/modulated workloads are pure functions of their seed —
    the determinism contract every scenario class must honor."""

    def test_composite_pattern_same_seed_same_destinations(self, fattree4):
        def draws(seed):
            rng = np.random.default_rng(seed)
            pattern = CompositePattern(
                [StaggeredPattern(fattree4), StridePattern(fattree4)],
                weights=[0.7, 0.3],
            )
            return [pattern.pick_dst("h_0_0_0", rng) for _ in range(200)]

        assert draws(42) == draws(42)
        assert draws(42) != draws(43)  # the seed is actually consumed

    def test_modulated_arrivals_same_seed_same_stream(self):
        profile = LoadProfile.step(low=0.5, high=2.0, switch_at_s=20.0, end_s=40.0)

        def arrivals(seed):
            engine = EventEngine()
            topo = FatTree(p=4)
            events = []
            process = ModulatedArrivalProcess(
                engine=engine,
                pattern=StridePattern(topo),
                spec=WorkloadSpec(arrival_rate_per_host=0.5, duration_s=40.0),
                sink=lambda s, d, b: events.append((engine.now, s, d, b)),
                rng=np.random.default_rng(seed),
                profile=profile,
            )
            process.start()
            engine.run_until_idle()
            return events

        # Byte-identical: same instants, same endpoints, same sizes.
        assert arrivals(7) == arrivals(7)
        assert arrivals(7) != arrivals(8)
