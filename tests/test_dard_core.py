"""Tests for DARD: BoNF, monitors, the per-host daemon, and Algorithm 1."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.core import DardScheduler, PathMonitor, PathState, switches_to_query
from repro.core.daemon import HostDaemon
from repro.scheduling import MessageLedger, SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


def make_ctx(seed=0, p=4, **scheduler_kwargs):
    topo = FatTree(p=p, link_bandwidth_bps=100 * MBPS)
    ctx = SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(seed),
    )
    scheduler = DardScheduler(**scheduler_kwargs)
    scheduler.attach(ctx)
    return ctx, scheduler


class TestPathState:
    def test_bonf(self):
        state = PathState(bandwidth_bps=100 * MBPS, flow_numbers=4)
        assert state.bonf == 25 * MBPS

    def test_empty_link_infinite(self):
        assert PathState(bandwidth_bps=100 * MBPS, flow_numbers=0).bonf == float("inf")

    def test_one_more_flow_estimate(self):
        state = PathState(bandwidth_bps=100 * MBPS, flow_numbers=1)
        assert state.bonf_with_one_more_flow() == 50 * MBPS

    def test_str_renders(self):
        assert "inf" in str(PathState(bandwidth_bps=1.0, flow_numbers=0))


class TestSwitchesToQuery:
    def test_inter_pod_groups(self, fattree4):
        """Paper §2.4.2: source ToR + its aggs + all cores + dest aggs."""
        switches = switches_to_query(fattree4, "tor_0_0", "tor_1_0")
        assert "tor_0_0" in switches
        assert {"agg_0_0", "agg_0_1"} <= switches
        assert set(fattree4.cores()) <= switches
        assert {"agg_1_0", "agg_1_1"} <= switches
        assert len(switches) == 1 + 2 + 4 + 2

    def test_intra_pod_smaller_set(self, fattree4):
        switches = switches_to_query(fattree4, "tor_0_0", "tor_0_1")
        assert switches == {"tor_0_0", "agg_0_0", "agg_0_1"}

    def test_covers_every_path(self, fattree4):
        switches = switches_to_query(fattree4, "tor_0_0", "tor_2_1")
        for path in fattree4.equal_cost_paths("tor_0_0", "tor_2_1"):
            # Every switch-switch link has its egress switch in the set.
            for u, _ in zip(path, path[1:]):
                assert u in switches


class TestPathMonitor:
    def test_query_assembles_path_states(self):
        ctx, scheduler = make_ctx()
        net = ctx.network
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 500 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.engine.run_until(10.5)  # promoted at 10 s
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", MessageLedger())
        states = monitor.query()
        assert states[0].flow_numbers == 1
        # Path 1 shares the tor->agg_0_0 uplink with path 0, so its
        # bottleneck also sees the elephant; paths 2/3 (via agg_0_1) don't.
        assert states[1].flow_numbers == 1
        assert states[2].flow_numbers == 0
        assert states[3].flow_numbers == 0

    def test_query_message_accounting(self, fattree4):
        net = Network(fattree4)
        ledger = MessageLedger()
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", ledger)
        monitor.query()
        n = len(monitor.query_switches)
        assert ledger.bytes_by_kind["dard_query"] == 48 * n
        assert ledger.bytes_by_kind["dard_reply"] == 32 * n
        assert monitor.queries_sent == n

    def test_path_index_lookup(self, fattree4):
        net = Network(fattree4)
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", MessageLedger())
        for i, path in enumerate(monitor.paths):
            assert monitor.path_index(path) == i
        with pytest.raises(KeyError):
            monitor.path_index(("tor_0_0", "agg_0_0", "tor_0_1"))


class _RawContext:
    """Network + codec with no scheduler attached (daemon unit tests)."""

    def __init__(self, p=4):
        topo = FatTree(p=p, link_bandwidth_bps=100 * MBPS)
        self.network = Network(topo)
        self.codec = PathCodec(HierarchicalAddressing(topo))


class TestHostDaemonAlgorithm1:
    def _daemon_with_monitor(self):
        ctx = _RawContext()
        daemon = HostDaemon(
            host="h_0_0_0",
            network=ctx.network,
            codec=ctx.codec,
            ledger=MessageLedger(),
            delta_bps=10 * MBPS,
        )
        return ctx, daemon

    def _start_elephant(self, ctx, src, dst, path_index):
        topo = ctx.network.topology
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        flow = ctx.network.start_flow(
            src, dst, 500 * MB,
            [FlowComponent(topo.host_path(src, dst, paths[path_index]))],
        )
        ctx.network.engine.run_until(ctx.network.engine.now + 10.1)
        return flow

    def test_shift_off_congested_path(self):
        ctx, daemon = self._daemon_with_monitor()
        # Two of our elephants collide on path 0; paths 1-3 are empty.
        f1 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_0", 0)
        f2 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_1", 0)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        daemon.query_monitors()
        shifts = daemon.run_scheduling_round()
        assert shifts == 1
        paths = {tuple(f1.switch_path()[1:-1]), tuple(f2.switch_path()[1:-1])}
        assert len(paths) == 2  # now on different paths

    def test_no_shift_when_balanced(self):
        ctx, daemon = self._daemon_with_monitor()
        f1 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_0", 0)
        f2 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_1", 2)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        daemon.query_monitors()
        # One elephant per path: estimation (bw/2) - min (bw/1) < 0 -> stay.
        assert daemon.run_scheduling_round() == 0

    def test_inactive_path_rule(self):
        """A host cannot shift flows off a congested path it does not use
        (paper §2.5's E1 example)."""
        ctx, daemon = self._daemon_with_monitor()
        # Someone else's two elephants collide on path 0.
        other1 = self._start_elephant(ctx, "h_0_0_1", "h_1_0_0", 0)
        other2 = self._start_elephant(ctx, "h_0_0_1", "h_1_1_0", 0)
        # Our host has one elephant alone on path 2 — already optimal.
        ours = self._start_elephant(ctx, "h_0_0_0", "h_1_0_1", 2)
        daemon.on_elephant(ours)
        daemon.query_monitors()
        assert daemon.run_scheduling_round() == 0
        assert ours.path_switches == 0

    def test_delta_threshold_blocks_marginal_gains(self):
        ctx = _RawContext()
        daemon = HostDaemon(
            host="h_0_0_0",
            network=ctx.network,
            codec=ctx.codec,
            ledger=MessageLedger(),
            delta_bps=200 * MBPS,  # impossible to beat on 100 Mbps links
        )
        f1 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_0", 0)
        f2 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_1", 0)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        daemon.query_monitors()
        assert daemon.run_scheduling_round() == 0

    def test_monitor_released_when_elephants_finish(self):
        ctx, daemon = self._daemon_with_monitor()
        flow = self._start_elephant(ctx, "h_0_0_0", "h_1_0_0", 0)
        daemon.on_elephant(flow)
        assert len(daemon.monitors) == 1
        # 500 MB at 100 Mbps finishes after 40 s; the attached scheduler's
        # periodic loops never drain, so advance a bounded clock instead of
        # run_until_idle.
        ctx.network.engine.run_until(60.0)
        assert not flow.active
        daemon.on_flow_completed(flow)
        assert len(daemon.monitors) == 0

    def test_same_tor_elephants_ignored(self):
        ctx, daemon = self._daemon_with_monitor()
        flow = self._start_elephant(ctx, "h_0_0_0", "h_0_0_1", 0)
        daemon.on_elephant(flow)
        assert len(daemon.monitors) == 0

    def test_flow_vector_counts_own_elephants_per_path(self):
        ctx, daemon = self._daemon_with_monitor()
        f1 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_0", 1)
        f2 = self._start_elephant(ctx, "h_0_0_0", "h_1_0_1", 1)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        monitor = next(iter(daemon.monitors.values()))
        assert daemon.flow_vector(monitor) == [0, 2, 0, 0]


class TestToyExample:
    """The paper's Figure 1 / Table 1 walk-through: three elephants squeezed
    through one core converge in a couple of rounds to disjoint paths and a
    global minimum BoNF equal to the full link bandwidth."""

    def test_three_flows_converge(self):
        ctx, scheduler = make_ctx(seed=1)
        net = ctx.network
        topo = net.topology

        def start_on_core0(src, dst):
            paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
            via_core0 = next(p for p in paths if p[2] == "core_0_0")
            return net.start_flow(
                src, dst, 2000 * MB,
                [FlowComponent(topo.host_path(src, dst, via_core0))],
            )

        # Mirror Figure 1: three inter-pod elephants, all through core 1
        # (our core_0_0), from distinct sources.
        flows = [
            start_on_core0("h_0_0_0", "h_1_0_0"),   # Flow0: E11 -> E21
            start_on_core0("h_0_1_0", "h_1_1_1"),   # Flow1: E13 -> E24
            start_on_core0("h_2_0_1", "h_1_1_0"),   # Flow2: E32 -> E23
        ]
        net.engine.run_until(60.0)
        # All three should now ride distinct cores at full bandwidth.
        cores = {f.switch_path()[3] for f in flows}
        assert len(cores) == 3
        for flow in flows:
            assert flow.rate_bps == pytest.approx(100 * MBPS, rel=1e-6)
        # Convergence took at most a handful of shifts, then stopped.
        total = sum(f.path_switches for f in flows)
        assert 1 <= total <= 4
        shifts_at_60 = scheduler.total_shifts()
        net.engine.run_until(120.0)
        assert scheduler.total_shifts() == shifts_at_60  # Nash: no oscillation


class TestDardSchedulerIntegration:
    def test_daemons_created_per_source_host(self):
        ctx, scheduler = make_ctx()
        scheduler.place("h_0_0_0", "h_1_0_0", 300 * MB)
        scheduler.place("h_0_0_1", "h_2_0_0", 300 * MB)
        ctx.engine.run_until(11.0)
        assert set(scheduler.daemons) == {"h_0_0_0", "h_0_0_1"}

    def test_elephants_only(self):
        ctx, scheduler = make_ctx()
        scheduler.place("h_0_0_0", "h_1_0_0", 5 * MB)  # finishes quickly
        ctx.engine.run_until(20.0)
        assert scheduler.daemons == {}
        assert scheduler.ledger.total_bytes == 0.0

    def test_control_messages_flow_once_monitoring(self):
        ctx, scheduler = make_ctx()
        scheduler.place("h_0_0_0", "h_1_0_0", 300 * MB)
        ctx.engine.run_until(15.0)
        assert scheduler.ledger.total_bytes > 0
        assert set(scheduler.ledger.bytes_by_kind) == {"dard_query", "dard_reply"}

    def test_synchronized_mode_has_zero_jitter(self):
        ctx, scheduler = make_ctx(synchronized=True)
        assert scheduler._jitter() == 0.0

    def test_jitter_in_paper_range(self):
        ctx, scheduler = make_ctx()
        draws = [scheduler._jitter() for _ in range(200)]
        assert all(1.0 <= j <= 5.0 for j in draws)
        assert max(draws) > 4.0 and min(draws) < 2.0
