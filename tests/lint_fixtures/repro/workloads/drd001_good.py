"""DRD001 good fixture: the suppression matches a real finding.

The wall-clock read below genuinely fires DET002; the audited disable
comment is therefore *used* and DRD001 stays quiet.
"""

import time


def stamp_log_line(message):
    # Wall-clock is operator-facing log text only, never simulation state.
    return f"{time.time():.0f} {message}"  # dardlint: disable=DET002
