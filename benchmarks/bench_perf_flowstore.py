"""Data-plane benchmark: columnar FlowStore vs scalar per-flow settle loops.

Runs the same seeded ECMP scenario twice — once with the vectorized
columnar settle/ETA/completion passes over the :class:`FlowStore` SoA
columns (``settle_mode="store"``, the default) and once with the preserved
scalar per-flow reference loops (``settle_mode="reference"``) — and checks
two things:

* **equivalence**: identical flow records — the FlowStore bit-exactness
  contract, end to end (the same contract ``repro validate`` enforces as
  the settle-equivalence differential oracle and the golden
  settle-reference cross-check);
* **speed**: data-plane wall time (``settle_time_s`` + ``eta_time_s``
  from ``Network.perf_stats()``) drops by the acceptance factor.

ECMP is the scheduler on purpose: it has no control plane to speak of, so
the settle/ETA passes dominate and the measured speedup isolates the
columnar core. Output rows land in
``benchmarks/results/BENCH_perf_flowstore.json``. Scale and duration are
env-overridable (``BENCH_PERF_FLOWSTORE_P``,
``BENCH_PERF_FLOWSTORE_DURATION``) so CI can run a fast smoke at p=4
while the default exercises p=16; the speedup gate only applies at
p >= 16 where live-flow populations are large enough for batching to
matter.
"""

import json
import os
import pathlib
import time

from repro.common.units import MB, MBPS
from repro.experiments.figures import ExperimentOutput
from repro.experiments.runner import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

P = int(os.environ.get("BENCH_PERF_FLOWSTORE_P", "16"))
DURATION_S = float(os.environ.get("BENCH_PERF_FLOWSTORE_DURATION", "15"))

#: Settle+ETA wall-time reduction the columnar mode must deliver at p=16
#: (the ISSUE acceptance gate).
MIN_SPEEDUP = 2.0


def _config(settle_mode):
    return ScenarioConfig(
        topology="fattree",
        topology_params={"p": P, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="ecmp",
        arrival_rate_per_host=0.05,
        duration_s=DURATION_S,
        flow_size_bytes=64 * MB,
        seed=1,
        network_params={"settle_mode": settle_mode},
    )


def _run_mode(settle_mode):
    network_box = []
    started = time.perf_counter()
    result = run_scenario(_config(settle_mode), instrument=network_box.append)
    wall_s = time.perf_counter() - started
    stats = network_box[0].perf_stats()
    settle_time = stats["settle_time_s"] + stats["eta_time_s"]
    row = {
        "mode": settle_mode,
        "p": P,
        "duration_s": DURATION_S,
        "wall_s": wall_s,
        "flows_completed": len(result.records),
        "settle_eta_time_s": settle_time,
        "settle_time_s": stats["settle_time_s"],
        "eta_time_s": stats["eta_time_s"],
        "settle_batches": int(stats["settle_batches"]),
        "store_rows": int(stats["store_rows"]),
        "store_revivals": int(stats["store_revivals"]),
        "store_compactions": int(stats["store_compactions"]),
    }
    return row, result


def _records(result):
    return [
        (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
        for r in result.records
    ]


def _run_all():
    reference_row, reference_result = _run_mode("reference")
    store_row, store_result = _run_mode("store")

    # Bit-exactness, end to end: same flow records in both settle modes.
    assert _records(store_result) == _records(reference_result), (
        f"store mode diverged: {len(reference_result.records)} reference vs "
        f"{len(store_result.records)} store records"
    )

    speedup = (
        reference_row["settle_eta_time_s"] / store_row["settle_eta_time_s"]
        if store_row["settle_eta_time_s"]
        else float("inf")
    )
    rows = [reference_row, dict(store_row, settle_speedup=speedup)]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf_flowstore.json").write_text(
        json.dumps({"experiment": "perf_flowstore", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "perf_flowstore",
        "settle+ETA wall time: columnar FlowStore vs scalar per-flow loops",
        rows=[
            {
                "mode": r["mode"],
                "wall_s": round(r["wall_s"], 2),
                "settle_eta_time_s": round(r["settle_eta_time_s"], 3),
                "batches": r["settle_batches"],
                "flows": r["flows_completed"],
            }
            for r in rows
        ],
        notes=f"p={P} ecmp stride, {DURATION_S:.0f}s, records verified "
        f"identical across modes; settle+ETA speedup {speedup:.2f}x",
    )


def test_perf_flowstore(benchmark, save_output):
    output = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_output(output)
    rows = json.loads(
        (RESULTS_DIR / "BENCH_perf_flowstore.json").read_text()
    )["rows"]
    store = rows[1]
    assert store["settle_batches"] > 0, store
    # The span drains to zero once every flow completes; revivals prove
    # the free-list lifecycle actually exercised during the run.
    assert store["store_revivals"] > 0, store
    if P >= 16:
        # Live-flow populations are only large enough for the columnar
        # passes to pay off at scale; the p=4 CI smoke checks equivalence
        # and telemetry only.
        assert store["settle_speedup"] >= MIN_SPEEDUP, store
