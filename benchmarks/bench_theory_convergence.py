"""Appendix B, quantified: steps-to-Nash and price of anarchy.

The paper proves convergence in finitely many steps and argues the gap to
optimal 'is likely to be small in practice'. Expected: steps grow roughly
linearly with the number of flows (each flow needs only a few moves), and
the Nash/optimum min-BoNF ratio stays near 1 on brute-forceable games.
"""

from repro.experiments.figures import theory_convergence
from conftest import run_once


def test_theory_convergence(benchmark, save_output):
    output = run_once(benchmark, theory_convergence, trials=15)
    save_output(output)
    rows = {row["flows"]: row for row in output.rows}
    # Finite, modest convergence: well under one move per flow per round.
    for flows, row in rows.items():
        assert row["max_steps"] <= 4 * flows, row
    # The paper's "gap is small in practice": PoA >= 0.5 everywhere
    # brute-forced, and the mean is near-optimal.
    for row in rows.values():
        if row["mean_poa"] != "-":
            assert row["mean_poa"] >= 0.9
            assert row["worst_poa"] >= 0.5
