#!/usr/bin/env python
"""Parameter study workflow: sweep, parallelize, export.

Sweeps DARD's δ threshold and the traffic pattern over the testbed
topology — in parallel across CPU cores — then renders the grid and
exports CSV/JSON artifacts for external analysis. This is the workflow a
user runs when tuning DARD for their own fabric.

Run:  python examples/parameter_study.py
"""

import tempfile
from pathlib import Path

from repro.analysis import parallel_sweep, rows_to_csv
from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, save_config
from repro.experiments.report import render_table


def main() -> None:
    base = ScenarioConfig(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.08,
        duration_s=60.0,
        flow_size_bytes=128 * MB,
        seed=5,
    )
    grid = {
        "pattern": ["staggered", "stride"],
        "scheduler_params.delta_bps": [0.0, 10 * MBPS, 50 * MBPS],
    }
    combos = 1
    for values in grid.values():
        combos *= len(values)
    print(f"sweeping {combos} combinations in parallel...")
    results = parallel_sweep(base, grid)

    rows = []
    for overrides, result in results:
        rows.append(
            {
                "pattern": overrides["pattern"],
                "delta_mbps": overrides["scheduler_params.delta_bps"] / 1e6,
                "mean_fct_s": result.mean_fct,
                "shifts": result.dard_shifts,
                "control_kb": result.control_bytes / 1e3,
            }
        )
    print()
    print(render_table(rows))

    out_dir = Path(tempfile.gettempdir())
    csv_path = out_dir / "dard_delta_sweep.csv"
    rows_to_csv(rows, csv_path)
    config_path = out_dir / "dard_base_scenario.json"
    save_config(base, config_path)
    print(f"\nartifacts: {csv_path}")
    print(f"           {config_path}  (rerun with: dard run-config {config_path})")


if __name__ == "__main__":
    main()
